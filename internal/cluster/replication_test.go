package cluster

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"fixgo/internal/core"
	"fixgo/internal/runtime"
	"fixgo/internal/transport"
)

// replMesh builds a client-only edge fronting `workers` worker nodes in
// a full mesh, every node at replication factor r with fast heartbeats.
func replMesh(t *testing.T, workers, r int, reg *runtime.Registry) (*Node, []*Node) {
	t.Helper()
	client := NewNode("client", hbOpts(NodeOptions{Cores: 1, ClientOnly: true, Replicas: r}))
	ws := make([]*Node, workers)
	for i := range ws {
		ws[i] = NewNode(fmt.Sprintf("w%d", i), hbOpts(NodeOptions{Cores: 2, Replicas: r, Registry: reg}))
	}
	for _, w := range ws {
		Connect(client, w, fastLink())
	}
	FullMesh(fastLink(), ws...)
	return client, ws
}

func closeAll(client *Node, ws []*Node) {
	client.Close()
	for _, w := range ws {
		w.Close()
	}
}

// storedCopies counts how many of the given nodes hold h resident.
func storedCopies(h core.Handle, nodes ...*Node) int {
	n := 0
	for _, node := range nodes {
		if node.Store().Contains(h) {
			n++
		}
	}
	return n
}

// TestRingAgreesAcrossNodes pins the distributed determinism the
// fetcher's ring tier relies on: every node in a converged mesh derives
// the identical owner list for any handle, including the client-only
// edge (which is not itself a ring member).
func TestRingAgreesAcrossNodes(t *testing.T) {
	client, ws := replMesh(t, 3, 2, nil)
	defer closeAll(client, ws)
	h := core.BlobHandle(bytes.Repeat([]byte{7}, 900))
	want := client.RingOwners(h)
	if len(want) != 2 {
		t.Fatalf("client ring owners = %v, want 2 entries", want)
	}
	for _, w := range ws {
		if got := w.RingOwners(h); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s ring owners %v != client's %v", w.ID(), got, want)
		}
	}
	// The client is not a ring member; the workers are.
	if ns := client.NetStats(); ns.RingMembers != 3 || ns.Replicas != 2 {
		t.Fatalf("client NetStats ring=%d replicas=%d, want 3/2", ns.RingMembers, ns.Replicas)
	}
	if ns := ws[0].NetStats(); ns.RingMembers != 3 {
		t.Fatalf("worker NetStats ring=%d, want 3", ns.RingMembers)
	}
}

// TestReplicationOnWrite pins the write path: a PutBlob at R=2 ends up
// resident on two nodes (writer + one ring successor) without any fetch
// traffic, and the writer's view learns of the ack'd copy.
func TestReplicationOnWrite(t *testing.T) {
	client, ws := replMesh(t, 3, 2, nil)
	defer closeAll(client, ws)
	data := bytes.Repeat([]byte{3}, 1200)
	h := ws[0].PutBlob(data)
	all := append([]*Node{client}, ws...)
	waitFor(t, "2 replicas after PutBlob", func() bool {
		return storedCopies(h, all...) >= 2
	})
	waitFor(t, "replicate ack", func() bool {
		return ws[0].NetStats().ReplicasAcked >= 1
	})
	if sent := ws[0].NetStats().ReplicasSent; sent != 1 {
		t.Fatalf("ReplicasSent = %d, want 1 (R−1 successors)", sent)
	}
	// The copy landed where the ring says it should.
	owners := ws[0].RingOwners(h)
	held := 0
	for _, id := range owners {
		for _, w := range ws {
			if w.ID() == id && w.Store().Contains(h) {
				held++
			}
		}
	}
	if held == 0 {
		t.Fatalf("no ring owner of %v holds a copy (owners %v)", h, owners)
	}
}

// TestReplicationDisabledAtR1 pins the R=1 contract: no replication
// traffic, the writer's copy is the only copy.
func TestReplicationDisabledAtR1(t *testing.T) {
	client, ws := replMesh(t, 3, 1, nil)
	defer closeAll(client, ws)
	h := ws[0].PutBlob(bytes.Repeat([]byte{4}, 1200))
	time.Sleep(50 * time.Millisecond) // would-be replication window
	all := append([]*Node{client}, ws...)
	if got := storedCopies(h, all...); got != 1 {
		t.Fatalf("copies at R=1 = %d, want 1", got)
	}
	ns := ws[0].NetStats()
	if ns.ReplicasSent != 0 || ns.RepairReplicasSent != 0 {
		t.Fatalf("replication traffic at R=1: %+v", ns)
	}
}

// TestChaosReplicatedFetchSurvivesKill is the acceptance regression for
// replicated placement: an object written on a worker that is then
// killed must still be fetchable at R=2 (a ring successor holds a
// replica the fetcher locates without ever having been told) — and must
// NOT be fetchable at R=1, proving the replica was doing the work.
func TestChaosReplicatedFetchSurvivesKill(t *testing.T) {
	data := bytes.Repeat([]byte{9}, 2048)

	t.Run("R=2 survives", func(t *testing.T) {
		client, ws := replMesh(t, 3, 2, nil)
		defer closeAll(client, ws)
		h := ws[0].PutBlob(data)
		all := append([]*Node{client}, ws...)
		waitFor(t, "replica established", func() bool {
			return storedCopies(h, all...) >= 2
		})
		ws[0].Close() // the writer dies with its copy
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		got, err := client.ObjectBytes(ctx, h)
		if err != nil {
			t.Fatalf("fetch after killing the writer at R=2: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("fetched bytes mismatch")
		}
	})

	t.Run("R=1 loses the object", func(t *testing.T) {
		client, ws := replMesh(t, 3, 1, nil)
		defer closeAll(client, ws)
		h := ws[0].PutBlob(data)
		ws[0].Close()
		// Wait until the client has evicted the dead writer, so the fetch
		// deterministically asks only survivors.
		waitFor(t, "writer evicted", func() bool {
			return client.NetStats().Peers == 2
		})
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := client.ObjectBytes(ctx, h); err == nil {
			t.Fatal("fetch at R=1 succeeded after the only holder died; expected failure")
		}
	})
}

// TestChaosRepairReestablishesReplicas pins anti-entropy: killing a
// replica holder leaves an object under-replicated; the surviving
// holder's eviction-triggered repair pass must push a fresh copy onto
// the ring's new successor, restoring R copies.
func TestChaosRepairReestablishesReplicas(t *testing.T) {
	client, ws := replMesh(t, 3, 2, nil)
	defer closeAll(client, ws)
	data := bytes.Repeat([]byte{5}, 1500)
	h := ws[0].PutBlob(data)
	all := append([]*Node{client}, ws...)
	waitFor(t, "initial replication", func() bool {
		return storedCopies(h, all...) >= 2
	})
	// Kill one holder (writer or successor — either leaves one copy).
	var killed *Node
	for _, w := range ws {
		if w.Store().Contains(h) {
			killed = w
			break
		}
	}
	killed.Close()
	var survivors []*Node
	for _, w := range ws {
		if w != killed {
			survivors = append(survivors, w)
		}
	}
	waitFor(t, "repair re-established 2 copies on survivors", func() bool {
		return storedCopies(h, append([]*Node{client}, survivors...)...) >= 2
	})
	repaired := false
	for _, w := range survivors {
		if ns := w.NetStats(); ns.RepairPasses > 0 {
			repaired = true
		}
	}
	if !repaired {
		t.Fatal("no surviving worker ran a repair pass")
	}
}

// TestReplicationOfEvalOutputs pins the third write path: a delegated
// job's result closure is replicated off the worker that computed it,
// so a completed answer survives that worker's death.
func TestReplicationOfEvalOutputs(t *testing.T) {
	reg := runtime.NewRegistry()
	reg.RegisterFunc("pad", func(api core.API, input core.Handle) (core.Handle, error) {
		entries, err := api.AttachTree(input)
		if err != nil {
			return core.Handle{}, err
		}
		b, err := api.AttachBlob(entries[2])
		if err != nil {
			return core.Handle{}, err
		}
		v, err := core.DecodeU64(b)
		if err != nil {
			return core.Handle{}, err
		}
		// A result big enough to be a real stored object, not a literal.
		return api.CreateBlob(bytes.Repeat([]byte{byte(v)}, 1024)), nil
	})
	client, ws := replMesh(t, 2, 2, reg)
	defer closeAll(client, ws)

	fn := client.PutBlob(core.NativeFunctionBlob("pad"))
	tree, err := client.PutTree(core.InvocationTree(core.DefaultLimits.Handle(), fn, core.LiteralU64(7)))
	if err != nil {
		t.Fatal(err)
	}
	th, _ := core.Application(tree)
	enc, _ := core.Strict(th)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := client.Eval(ctx, enc)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "result replicated onto 2 workers", func() bool {
		return storedCopies(res, ws...) >= 2
	})
}

// TestChaosReplicationUnderChaosLink runs the R=2 survival scenario with
// the client↔worker links wrapped in seeded Chaos conns (deterministic
// latency spikes), confirming replication and ring-tier fetching hold up
// under the chaos harness's fault machinery rather than only on clean
// pipes.
func TestChaosReplicationUnderChaosLink(t *testing.T) {
	data := bytes.Repeat([]byte{11}, 2048)
	client := NewNode("client", hbOpts(NodeOptions{Cores: 1, ClientOnly: true, Replicas: 2}))
	ws := make([]*Node, 3)
	for i := range ws {
		ws[i] = NewNode(fmt.Sprintf("w%d", i), hbOpts(NodeOptions{Cores: 2, Replicas: 2}))
	}
	defer closeAll(client, ws)
	for i, w := range ws {
		pa, pb := transport.Pipe(fastLink())
		ca := transport.Chaos(pa, transport.ChaosConfig{
			Seed:         int64(1000 + i),
			SpikeEvery:   5,
			SpikeLatency: time.Millisecond,
		})
		client.AttachPeer(ca)
		w.AttachPeer(pb)
		waitPeer(client, w.ID())
		waitPeer(w, client.ID())
	}
	FullMesh(fastLink(), ws...)

	h := ws[1].PutBlob(data)
	all := append([]*Node{client}, ws...)
	waitFor(t, "replica established", func() bool {
		return storedCopies(h, all...) >= 2
	})
	ws[1].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := client.ObjectBytes(ctx, h)
	if err != nil {
		t.Fatalf("fetch over chaos links after kill: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetched bytes mismatch")
	}
}
