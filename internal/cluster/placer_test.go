package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"fixgo/internal/core"
	"fixgo/internal/proto"
	"fixgo/internal/transport"
)

// addFakePeer injects a synthetic peer (no receive loop) so pick and
// candidates can be exercised without real links.
func addFakePeer(n *Node, id string, role byte) *peer {
	a, _ := transport.Pipe(transport.LinkConfig{})
	p := &peer{id: id, role: role, conn: a}
	p.lastSeen.Store(time.Now().UnixNano())
	n.mu.Lock()
	n.peers[id] = p
	n.mu.Unlock()
	return p
}

func setView(n *Node, h core.Handle, owners ...string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, o := range owners {
		n.viewAddLocked(h, o)
	}
}

func testEnc(t *testing.T, n *Node, arg uint64) core.Handle {
	t.Helper()
	fn := n.Store().PutBlob(core.NativeFunctionBlob("f"))
	tree, err := n.Store().PutTree(core.InvocationTree(core.DefaultLimits.Handle(), fn, core.LiteralU64(arg)))
	if err != nil {
		t.Fatal(err)
	}
	th, _ := core.Application(tree)
	enc, _ := core.Strict(th)
	return enc
}

// TestPickPlacementTable pins pick's cost model: bytes that must move to
// each candidate, plus the output-size hint for non-local placements.
func TestPickPlacementTable(t *testing.T) {
	remote := core.BlobHandle(bytes.Repeat([]byte{1}, 4096)) // never resident locally
	cases := []struct {
		name  string
		local bool     // the 4 KiB dependency is resident on the picker
		view  []string // peers the view locates the dependency on
		hint  uint64
		want  string
	}{
		{name: "dep only on w1 goes to w1", view: []string{"w1"}, want: "w1"},
		{name: "dep local stays local", local: true, hint: 64, want: "self"},
		{name: "huge hint beats locality", view: []string{"w1"}, hint: 1 << 20, want: "self"},
		{name: "dep on both w1 and self stays local (hint breaks the tie)", local: true, view: []string{"w1"}, hint: 64, want: "self"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := NewNode("self", NodeOptions{Cores: 1})
			defer n.Close()
			addFakePeer(n, "w1", proto.RoleWorker)
			addFakePeer(n, "w2", proto.RoleWorker)
			var depH core.Handle
			if tc.local {
				depH = n.Store().PutBlob(bytes.Repeat([]byte{1}, 4096))
			} else {
				depH = remote
			}
			setView(n, depH, tc.view...)
			deps := []dep{{h: keyOf(depH), size: 4096}}
			enc := testEnc(t, n, 1)
			if got := n.pick(enc, []string{"self", "w1", "w2"}, deps, tc.hint); got != tc.want {
				t.Fatalf("pick = %s, want %s", got, tc.want)
			}
		})
	}
}

// TestPickDeterministic: identical inputs must produce identical picks,
// call after call — placement is a pure function of (enc, view, load).
func TestPickDeterministic(t *testing.T) {
	n := NewNode("self", NodeOptions{Cores: 1})
	defer n.Close()
	addFakePeer(n, "w1", proto.RoleWorker)
	addFakePeer(n, "w2", proto.RoleWorker)
	for arg := uint64(0); arg < 32; arg++ {
		enc := testEnc(t, n, arg)
		first := n.pick(enc, []string{"self", "w1", "w2"}, nil, 0)
		for i := 0; i < 50; i++ {
			if got := n.pick(enc, []string{"self", "w1", "w2"}, nil, 0); got != first {
				t.Fatalf("arg %d: pick flapped %s → %s on call %d", arg, first, got, i)
			}
		}
	}
}

// TestPickTieBreakSpreads: with equal costs (no deps, no hint) the
// deterministic pseudo-random tie-break must spread distinct jobs across
// candidates instead of piling onto one.
func TestPickTieBreakSpreads(t *testing.T) {
	n := NewNode("self", NodeOptions{Cores: 1})
	defer n.Close()
	addFakePeer(n, "w1", proto.RoleWorker)
	addFakePeer(n, "w2", proto.RoleWorker)
	winners := make(map[string]int)
	for arg := uint64(0); arg < 64; arg++ {
		winners[n.pick(testEnc(t, n, arg), []string{"self", "w1", "w2"}, nil, 0)]++
	}
	if len(winners) < 2 {
		t.Fatalf("64 equal-cost jobs all picked one node: %v", winners)
	}
}

// TestPickEmptyViewFallback: a dependency nobody is known to hold costs
// the same bytes everywhere, so the output-size hint (charged only to
// remote placements) must keep the job local.
func TestPickEmptyViewFallback(t *testing.T) {
	n := NewNode("self", NodeOptions{Cores: 1})
	defer n.Close()
	addFakePeer(n, "w1", proto.RoleWorker)
	ghost := core.BlobHandle(bytes.Repeat([]byte{3}, 2048))
	deps := []dep{{h: keyOf(ghost), size: 2048}}
	for arg := uint64(0); arg < 16; arg++ {
		if got := n.pick(testEnc(t, n, arg), []string{"self", "w1"}, deps, 64); got != "self" {
			t.Fatalf("arg %d: pick = %s, want self (hint must break the unknown-owner tie)", arg, got)
		}
	}
}

// TestPickNeverSelectsEvictedPeer is the property-style pin: after any
// sequence of evictions, neither candidates() nor pick() may name an
// evicted peer, and the view must hold no evicted owner.
func TestPickNeverSelectsEvictedPeer(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := NewNode("self", NodeOptions{Cores: 1})
		peerIDs := []string{"w0", "w1", "w2", "w3", "w4"}
		peers := make(map[string]*peer, len(peerIDs))
		for _, id := range peerIDs {
			peers[id] = addFakePeer(n, id, proto.RoleWorker)
		}
		// Scatter view entries over random owner subsets.
		handles := make([]core.Handle, 20)
		for i := range handles {
			handles[i] = core.BlobHandle(bytes.Repeat([]byte{byte(i)}, 600+i))
			for _, id := range peerIDs {
				if rng.Intn(2) == 0 {
					setView(n, handles[i], id)
				}
			}
		}
		// Evict a random non-empty subset.
		evicted := make(map[string]bool)
		for _, id := range peerIDs {
			if rng.Intn(2) == 0 {
				evicted[id] = true
				n.evictPeer(peers[id], fmt.Errorf("test eviction"))
			}
		}
		if len(evicted) == 0 {
			evicted[peerIDs[0]] = true
			n.evictPeer(peers[peerIDs[0]], fmt.Errorf("test eviction"))
		}
		// The view must be clean of evicted owners.
		n.mu.Lock()
		for _, h := range handles {
			for _, id := range n.view.Owners(keyOf(h)) {
				if evicted[id] {
					n.mu.Unlock()
					t.Fatalf("seed %d: view[%v] still lists evicted %s", seed, h, id)
				}
			}
		}
		n.mu.Unlock()
		// And placement must never name an evicted peer.
		for trial := 0; trial < 200; trial++ {
			var deps []dep
			for k := 0; k < rng.Intn(4); k++ {
				h := handles[rng.Intn(len(handles))]
				deps = append(deps, dep{h: keyOf(h), size: h.Size()})
			}
			candidates, peerByID := n.candidates()
			for _, c := range candidates {
				if evicted[c] {
					t.Fatalf("seed %d: candidates() lists evicted %s", seed, c)
				}
			}
			target := n.pick(testEnc(t, n, uint64(trial)), candidates, deps, uint64(rng.Intn(2048)))
			if evicted[target] {
				t.Fatalf("seed %d trial %d: pick selected evicted peer %s", seed, trial, target)
			}
			if target != n.id && peerByID[target] == nil {
				t.Fatalf("seed %d trial %d: pick selected unknown peer %s", seed, trial, target)
			}
		}
		n.Close()
	}
}
