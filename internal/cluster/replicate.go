package cluster

import (
	"fixgo/internal/core"
	"fixgo/internal/objstore"
	"fixgo/internal/proto"
)

// This file is the node's replicated-placement machinery: the
// consistent-hash ring over the live membership, the asynchronous R-way
// write replication behind PutBlob/PutTree/eval outputs, and the
// anti-entropy repair pass that re-establishes R copies after the
// membership changes. The ring (objstore.Ring) is the single placement
// authority: the same structure orders the fetcher's owner walk
// (fetcher.go), chooses replication targets here, and decides which
// objects a repair pass must re-push.

// rebuildRingLocked recomputes the placement ring from the current live
// membership: every worker peer, plus this node unless it is
// client-only. Callers hold n.mu. Ring membership is derived
// independently on every node, so two nodes agree on placement exactly
// when they agree on which workers are alive — after a partition heals,
// repair passes reconverge the replica placement.
func (n *Node) rebuildRingLocked() {
	ids := make([]string, 0, len(n.peers)+1)
	for id, p := range n.peers {
		if p.role == proto.RoleWorker {
			ids = append(ids, id)
		}
	}
	if !n.opts.ClientOnly {
		ids = append(ids, n.id)
	}
	n.ring = objstore.NewRing(ids, n.opts.RingVnodes)
}

// Ring returns the node's current placement ring (rebuilt on every
// membership change; the returned Ring itself is immutable).
func (n *Node) Ring() *objstore.Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

// RingOwners returns the ordered ring owner list for h at the node's
// replication factor — where the object is canonically placed once
// written and repaired.
func (n *Node) RingOwners(h core.Handle) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring.Owners(keyOf(h), n.opts.Replicas)
}

// ReplicaCount reports how many copies of h this node can account for:
// one if locally resident, plus every peer the passive view believes
// holds it. It is a lower bound (the view is passive), used by tests and
// the replication bench to watch repair convergence.
func (n *Node) ReplicaCount(h core.Handle) int {
	k := keyOf(h)
	count := 0
	if n.st.Contains(k) && !k.IsLiteral() {
		count++
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return count + n.view.Count(k)
}

// replicaTargetsLocked returns the peers a copy of k must be pushed to:
// walk the ring's owner list, budget R−1 slots for owners other than
// this node, and skip owners the view already shows holding a copy
// (their slot is already satisfied — re-pushing would be pure
// overhead). Callers hold n.mu.
func (n *Node) replicaTargetsLocked(k core.Handle) []*peer {
	need := n.opts.Replicas - 1
	if need <= 0 {
		return nil
	}
	var out []*peer
	for _, id := range n.ring.Owners(k, n.opts.Replicas) {
		if need == 0 {
			break
		}
		if id == n.id {
			continue
		}
		need--
		if n.view.Holds(k, id) {
			continue
		}
		if p := n.peers[id]; p != nil {
			out = append(out, p)
		}
	}
	return out
}

// replicate pushes local copies of the given handles to their ring
// successors, asynchronously: targets are chosen and counted under the
// node lock, sends happen on a goroutine so a slow replica link never
// blocks the write path (the writer's synchronous local copy is the
// durability floor; the R−1 pushes converge behind it). repair marks
// sends triggered by an anti-entropy pass for the stats split. traceID,
// when non-empty, stamps each Replicate message with the trace that
// produced the objects (eval outputs), so replica holders can attribute
// the ingest; repair and standalone uploads pass "".
func (n *Node) replicate(handles []core.Handle, repair bool, traceID string) {
	if n.opts.Replicas <= 1 || len(handles) == 0 || n.isClosed() {
		return
	}
	type push struct {
		p    *peer
		k    core.Handle
		data []byte
	}
	var pushes []push
	// The node lock is taken per handle, never across the loop: a repair
	// pass walks the entire local store, and holding n.mu for the whole
	// walk would stall placement, fetch completion, and message handling
	// exactly during the post-eviction window they are needed most.
	// Object bytes are read outside n.mu (the store has its own lock).
	for _, h := range handles {
		k := keyOf(h)
		if k.IsLiteral() {
			continue
		}
		n.mu.Lock()
		targets := n.replicaTargetsLocked(k)
		n.mu.Unlock()
		if len(targets) == 0 {
			continue
		}
		data, err := n.st.ObjectBytes(k)
		if err != nil {
			continue // not locally resident (e.g. a literal-only ref)
		}
		n.mu.Lock()
		for _, p := range targets {
			pushes = append(pushes, push{p: p, k: k, data: data})
			if repair {
				n.net.RepairReplicasSent++
			} else {
				n.net.ReplicasSent++
			}
		}
		n.mu.Unlock()
	}
	if len(pushes) == 0 {
		return
	}
	go func() {
		for _, ps := range pushes {
			// A send error means the target died mid-push; its eviction
			// triggers the next repair pass, which re-covers this key.
			_ = ps.p.send(&proto.Message{Type: proto.TypeReplicate, From: n.id, Handle: ps.k, Trace: traceID, Data: ps.data})
		}
	}()
}

// repairKick schedules an anti-entropy repair pass in response to a
// membership change. No-op with replication off or after Close.
func (n *Node) repairKick() {
	if n.opts.Replicas <= 1 || n.isClosed() {
		return
	}
	go n.repairPass()
}

// repairPass walks every locally resident object and re-pushes copies to
// ring successors not known to hold one. Each node repairs the objects
// it holds: as long as any copy of an object survives a membership
// change, some holder's pass re-establishes R copies on the new ring.
// The pass is idempotent (pushes are content-addressed and targets
// already holding a copy are skipped), so concurrent passes from
// overlapping membership changes only cost duplicate sends, never
// divergence.
func (n *Node) repairPass() {
	var handles []core.Handle
	n.st.ForEach(func(h core.Handle, size uint64) { handles = append(handles, h) })
	n.mu.Lock()
	n.net.RepairPasses++
	n.mu.Unlock()
	n.replicate(handles, true, "")
}
