package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"fixgo/internal/core"
	"fixgo/internal/obsv"
	"fixgo/internal/proto"
)

// dep is one object a job's execution would need resident.
type dep struct {
	h    core.Handle
	size uint64
}

// Offload implements runtime.Delegator: the node's dataflow-aware
// scheduler. Given an Encode about to be forced, it walks the job's
// locally known definition closure, estimates per-candidate data movement
// (bytes of dependencies not already at the candidate, plus the hinted
// output size for non-local placements), and delegates to the cheapest
// node — or declines (handled=false) when this node is already cheapest.
//
// Delegations survive worker death: when the owning peer is evicted
// mid-flight, the job is re-placed on a surviving candidate (peers the
// job already died on are excluded), up to MaxReplacements attempts.
// Past the bound — or when no candidate survives — the job falls back to
// local evaluation, except on a ClientOnly node, which cannot execute
// and fails the job with an error wrapping ErrNoWorkers.
func (n *Node) Offload(ctx context.Context, enc core.Handle) (core.Handle, bool, error) {
	if hopsOf(ctx) >= n.opts.MaxHops {
		return core.Handle{}, false, nil
	}
	if rec, ok := receivedOf(ctx); ok && rec == enc {
		return core.Handle{}, false, nil
	}
	if !n.anyWorkerPeer() {
		if n.opts.ClientOnly {
			return core.Handle{}, true, ErrNoWorkers
		}
		return core.Handle{}, false, nil
	}
	deps, hint, ok := n.jobDeps(enc)
	if !ok {
		return core.Handle{}, false, nil
	}
	t := obsv.FromContext(ctx)
	placeStart := time.Now()
	tried := make(map[string]bool) // peers this job already died on
	replaced := 0
	for {
		if n.isClosed() {
			return core.Handle{}, true, ErrNodeClosed
		}
		candidates, peerByID := n.candidates()
		live := candidates[:0:0]
		remote := false
		for _, c := range candidates {
			if tried[c] {
				continue
			}
			live = append(live, c)
			if c != n.id {
				remote = true
			}
		}
		if !remote {
			// Every surviving worker already failed this job, or none
			// survive at all.
			if n.opts.ClientOnly {
				n.noteNet(func(s *NetStats) { s.ReplaceFailures++ })
				return core.Handle{}, true, fmt.Errorf("cluster: job has no surviving placement after %d attempts: %w", replaced+1, ErrNoWorkers)
			}
			if replaced > 0 {
				n.noteNet(func(s *NetStats) { s.JobsLocalFallback++ })
			}
			return core.Handle{}, false, nil
		}
		target := n.pick(enc, live, deps, hint)
		if target == n.id {
			if replaced > 0 {
				n.noteNet(func(s *NetStats) { s.JobsLocalFallback++ })
			}
			return core.Handle{}, false, nil
		}
		p := peerByID[target]
		if p == nil {
			tried[target] = true // raced away between snapshot and pick
			continue
		}
		// One placement span per attempt: re-placements after a worker
		// death show up as additional placement/delegate span pairs.
		t.AddSpanAt("placement", "", placeStart, time.Since(placeStart))
		res, err := n.delegate(ctx, p, enc, deps)
		placeStart = time.Now()
		var lost *PeerLostError
		if err == nil || !errors.As(err, &lost) {
			// Success, or a deterministic remote failure (the job itself
			// errored): re-running elsewhere would fail the same way.
			return res, true, err
		}
		// The worker died under the job. Re-place it on a survivor.
		tried[target] = true
		if replaced >= n.opts.MaxReplacements {
			if n.opts.ClientOnly {
				n.noteNet(func(s *NetStats) { s.ReplaceFailures++ })
				return core.Handle{}, true, fmt.Errorf("cluster: job re-placement bound (%d) exhausted: %w", n.opts.MaxReplacements, err)
			}
			n.noteNet(func(s *NetStats) { s.JobsLocalFallback++ })
			return core.Handle{}, false, nil
		}
		replaced++
		n.noteNet(func(s *NetStats) { s.JobsReplaced++ })
	}
}

// anyWorkerPeer reports whether at least one live worker peer exists.
func (n *Node) anyWorkerPeer() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range n.peers {
		if p.role == proto.RoleWorker {
			return true
		}
	}
	return false
}

// noteNet updates the failure-handling counters under the node lock.
func (n *Node) noteNet(f func(*NetStats)) {
	n.mu.Lock()
	f(&n.net)
	n.mu.Unlock()
}

// candidates lists placement targets: worker peers plus this node (unless
// it is client-only).
func (n *Node) candidates() ([]string, map[string]*peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	byID := make(map[string]*peer, len(n.peers))
	var out []string
	for id, p := range n.peers {
		if p.role != proto.RoleWorker {
			continue
		}
		out = append(out, id)
		byID[id] = p
	}
	if !n.opts.ClientOnly {
		out = append(out, n.id)
	}
	sort.Strings(out)
	return out, byID
}

// jobDeps walks the locally resident definition closure of an Encode's
// Thunk and collects the data objects its execution will need. It returns
// ok=false when the definition itself is not local (the job cannot be
// priced, so it runs here and fetching sorts it out).
func (n *Node) jobDeps(enc core.Handle) (deps []dep, hint uint64, ok bool) {
	thunk, err := core.EncodedThunk(enc)
	if err != nil {
		return nil, 0, false
	}
	def, err := core.ThunkDefinition(thunk)
	if err != nil {
		return nil, 0, false
	}
	if !def.IsLiteral() && !n.st.Contains(def) {
		return nil, 0, false
	}
	seen := make(map[core.Handle]bool)
	var walk func(h core.Handle)
	walk = func(h core.Handle) {
		switch h.RefKind() {
		case core.RefThunk, core.RefEncode:
			// The deferred computation's definition is itself a
			// dependency of running the job here or anywhere.
			var inner core.Handle
			if h.RefKind() == core.RefEncode {
				t, _ := core.EncodedThunk(h)
				inner, _ = core.ThunkDefinition(t)
			} else {
				inner, _ = core.ThunkDefinition(h)
			}
			walk(inner)
		case core.RefObject:
			k := h.AsObject()
			if k.IsLiteral() || seen[k] {
				return
			}
			seen[k] = true
			size := k.Size()
			if k.Kind() == core.KindTree {
				size *= core.HandleSize
			}
			deps = append(deps, dep{h: k, size: size})
			if k.Kind() == core.KindTree && n.st.Contains(k) {
				children, err := n.st.Tree(k)
				if err == nil {
					for _, c := range children {
						walk(c)
					}
				}
			}
		default:
			// Refs are shallow dependencies: not needed to run.
		}
	}
	walk(def)

	// The limits entry hints the output size (section 4.2.2).
	if n.st.Contains(def) {
		if entries, err := n.st.Tree(def); err == nil && len(entries) > 0 {
			if raw, err := n.st.Blob(entries[0]); err == nil && len(raw) == len(core.DefaultLimits.Encode()) {
				if lim, err := core.DecodeLimits(raw); err == nil {
					hint = lim.OutputSizeHint
				}
			}
		}
	}
	return deps, hint, true
}

// pick chooses the placement. With NoLocality it is uniform random
// (the Fig. 8b ablation); otherwise minimal data movement with a
// deterministic pseudo-random tie-break so equal-cost jobs spread.
func (n *Node) pick(enc core.Handle, candidates []string, deps []dep, hint uint64) string {
	if n.opts.NoLocality {
		n.mu.Lock()
		defer n.mu.Unlock()
		return candidates[n.rng.Intn(len(candidates))]
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	best := ""
	var bestCost, bestTie uint64
	for _, cand := range candidates {
		var cost uint64
		for _, d := range deps {
			if !n.hasLocked(cand, d.h) {
				cost += d.size
			}
		}
		if cand != n.id {
			cost += hint
		}
		// Load term: parallel dependees of the same downstream job
		// (section 4.2.2) spread across nodes instead of piling onto
		// one equal-cost winner. Self load comes from the engine's
		// in-flight count; peer load from our outstanding delegations.
		load := uint64(n.pending[cand])
		if cand == n.id {
			load += uint64(n.eng.InFlight())
		}
		cost += load * loadPenaltyBytes
		tie := tieBreak(enc, cand)
		if best == "" || cost < bestCost || (cost == bestCost && tie < bestTie) {
			best, bestCost, bestTie = cand, cost, tie
		}
	}
	return best
}

// loadPenaltyBytes prices one in-flight job in data-movement bytes: small
// enough that real locality (chunk-sized differences) still dominates,
// large enough to break ties among equal-cost candidates.
const loadPenaltyBytes = 8 << 10

func (n *Node) hasLocked(node string, h core.Handle) bool {
	if node == n.id {
		return n.st.Contains(h)
	}
	return n.view.Holds(keyOf(h), node)
}

func tieBreak(enc core.Handle, cand string) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], fnvHash(cand))
	sum := fnvHash(string(enc[:]) + string(buf[:]))
	return sum
}

// delegate ships the job to the chosen peer: the Encode handle plus the
// cheap part of its definition closure (Trees, and Blobs up to PushLimit,
// that the peer is not known to have), then waits for the Result. A send
// failure or the peer's eviction mid-wait surfaces as PeerLostError so
// Offload can re-place the job.
func (n *Node) delegate(ctx context.Context, p *peer, enc core.Handle, deps []dep) (core.Handle, error) {
	pushed := n.pushSet(p.id, enc, deps)
	w := &jobWaiter{ch: make(chan jobResult, 1), peerID: p.id}
	n.mu.Lock()
	n.jobW[enc] = append(n.jobW[enc], w)
	n.pending[p.id]++
	n.net.JobsDelegated++
	n.mu.Unlock()
	defer n.pendingDec(p.id)

	t := obsv.FromContext(ctx)
	var traceID string
	if t != nil {
		traceID = t.ID
	}
	sp := t.StartSpan("delegate", p.id)
	msg := &proto.Message{
		Type:   proto.TypeJob,
		From:   n.id,
		Handle: enc,
		Hops:   uint8(hopsOf(ctx) + 1),
		Trace:  traceID,
		Pushed: pushed,
	}
	if err := p.send(msg); err != nil {
		n.dropJobWaiter(enc, w)
		return core.Handle{}, &PeerLostError{Peer: p.id, Cause: err}
	}
	select {
	case res := <-w.ch:
		sp.End()
		if res.evalNS > 0 {
			// The worker reports its eval wall time in the Result header;
			// attribute it so the delegate span decomposes into transit
			// plus remote compute.
			t.AddSpanDur("remote_eval", p.id, time.Duration(res.evalNS))
		}
		if res.err == nil {
			n.mu.Lock()
			n.viewAddLocked(res.result, p.id)
			n.mu.Unlock()
		}
		return res.result, res.err
	case <-ctx.Done():
		n.dropJobWaiter(enc, w)
		return core.Handle{}, ctx.Err()
	}
}

// pendingDec drops one in-flight count for id, tolerating the entry
// having been purged by an eviction in the meantime.
func (n *Node) pendingDec(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if v, ok := n.pending[id]; ok {
		if v <= 1 {
			delete(n.pending, id)
		} else {
			n.pending[id] = v - 1
		}
	}
}

func (n *Node) dropJobWaiter(enc core.Handle, w *jobWaiter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ws := n.jobW[enc]
	for i, cand := range ws {
		if cand == w {
			n.jobW[enc] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(n.jobW[enc]) == 0 {
		delete(n.jobW, enc)
	}
}

// pushSet gathers the definition closure objects worth shipping with a
// job: Trees (the invocation descriptions themselves) and small Blobs the
// target is not known to hold. Shipping dependency information with the
// job is what lets Fixpoint avoid scheduler round trips (section 4.2.1).
func (n *Node) pushSet(target string, enc core.Handle, deps []dep) []proto.PushedObject {
	const (
		maxObjects = 8192
		maxBytes   = 8 << 20
	)
	var out []proto.PushedObject
	var total int
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, d := range deps {
		if len(out) >= maxObjects || total >= maxBytes {
			break
		}
		if n.view.Holds(keyOf(d.h), target) {
			continue
		}
		isTree := d.h.Kind() == core.KindTree
		if !isTree && d.size > uint64(n.opts.PushLimit) {
			continue
		}
		data, err := n.st.ObjectBytes(d.h)
		if err != nil {
			continue
		}
		out = append(out, proto.PushedObject{Handle: d.h, Data: data})
		total += len(data)
		n.viewAddLocked(d.h, target) // optimistic: it will have it
	}
	return out
}
