package cluster

import (
	"context"

	"fixgo/internal/core"
	"fixgo/internal/proto"
)

// This file is the node's programmatic ingestion surface: the hooks a
// serving frontend (internal/gateway) uses to upload objects and read
// results without going through the fixctl wire path. Uploads advertise
// incrementally — one handle per message — instead of re-broadcasting the
// whole inventory the way AdvertiseAll does, so a gateway pushing many
// small objects does not quadratically re-announce its store.

// PutBlob stores a Blob on this node, advertises it to all peers, and —
// with Replicas > 1 — asynchronously pushes copies to the blob's ring
// successors. Literal Blobs live entirely in their Handle and need no
// advertisement or replication.
func (n *Node) PutBlob(data []byte) core.Handle {
	h := n.st.PutBlob(data)
	if !h.IsLiteral() {
		n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: []core.Handle{h}})
		n.replicate([]core.Handle{h}, false, "")
	}
	return h
}

// PutTree stores a Tree on this node, advertises it to all peers, and —
// with Replicas > 1 — asynchronously pushes copies to the tree's ring
// successors.
func (n *Node) PutTree(entries []core.Handle) (core.Handle, error) {
	h, err := n.st.PutTree(entries)
	if err != nil {
		return core.Handle{}, err
	}
	n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: []core.Handle{h}})
	n.replicate([]core.Handle{h}, false, "")
	return h, nil
}

// ObjectBytes returns the packed bytes of an object, fetching it from
// peers (or the ExtraFetcher) when it is not locally resident.
func (n *Node) ObjectBytes(ctx context.Context, h core.Handle) ([]byte, error) {
	if data, err := n.st.ObjectBytes(h); err == nil {
		return data, nil
	}
	f := &clusterFetcher{n: n}
	return f.Fetch(ctx, h)
}
