package cluster

import (
	"context"
	"sync"

	"fixgo/internal/core"
	"fixgo/internal/proto"
)

// This file is the node's programmatic ingestion surface: the hooks a
// serving frontend (internal/gateway) uses to upload objects and read
// results without going through the fixctl wire path. Uploads advertise
// incrementally — one handle per message — instead of re-broadcasting the
// whole inventory the way AdvertiseAll does, so a gateway pushing many
// small objects does not quadratically re-announce its store.

// PutBlob stores a Blob on this node, advertises it to all peers, and —
// with Replicas > 1 — asynchronously pushes copies to the blob's ring
// successors. Literal Blobs live entirely in their Handle and need no
// advertisement or replication.
func (n *Node) PutBlob(data []byte) core.Handle {
	h := n.st.PutBlob(data)
	if !h.IsLiteral() {
		n.touch(h)
		n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: []core.Handle{h}})
		n.replicate([]core.Handle{h}, false, "")
	}
	return h
}

// PutBlobOwned stores a Blob whose Handle the caller already computed
// with a core.BlobHasher over exactly data, taking ownership of the slice
// — the streaming upload path's no-copy, no-rehash insert — then
// advertises and replicates like PutBlob. Implements
// gateway.OwnedBlobPutter.
func (n *Node) PutBlobOwned(h core.Handle, data []byte) core.Handle {
	h = n.st.PutBlobOwned(h, data)
	if !h.IsLiteral() {
		n.touch(h)
		n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: []core.Handle{h}})
		n.replicate([]core.Handle{h}, false, "")
	}
	return h
}

// PutTree stores a Tree on this node, advertises it to all peers, and —
// with Replicas > 1 — asynchronously pushes copies to the tree's ring
// successors.
func (n *Node) PutTree(entries []core.Handle) (core.Handle, error) {
	h, err := n.st.PutTree(entries)
	if err != nil {
		return core.Handle{}, err
	}
	n.touch(h)
	n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: []core.Handle{h}})
	n.replicate([]core.Handle{h}, false, "")
	return h, nil
}

// maxBatchFanout bounds how many of one batch's evaluations run
// concurrently on this node. The scheduler still places each item
// independently, so a batch spreads across workers; the bound only keeps
// one giant batch from monopolizing the local goroutine budget.
const maxBatchFanout = 32

// EvalBatch is the vectored submission entry (gateway.BatchEvaler): it
// forces every handle of one batch concurrently and reports per-item
// results and errors, both in input order. Items fail independently — a
// missing dependency in one slot does not poison its neighbors.
func (n *Node) EvalBatch(ctx context.Context, hs []core.Handle) ([]core.Handle, []error) {
	results := make([]core.Handle, len(hs))
	errs := make([]error, len(hs))
	sem := make(chan struct{}, maxBatchFanout)
	var wg sync.WaitGroup
	for i, h := range hs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, h core.Handle) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = n.Eval(ctx, h)
		}(i, h)
	}
	wg.Wait()
	return results, errs
}

// ObjectBytes returns the packed bytes of an object, fetching it from
// peers (or the ExtraFetcher) when it is not locally resident.
func (n *Node) ObjectBytes(ctx context.Context, h core.Handle) ([]byte, error) {
	if data, err := n.st.ObjectBytes(h); err == nil {
		n.touch(h)
		return data, nil
	}
	f := &clusterFetcher{n: n}
	return f.Fetch(ctx, h)
}
