package cluster

import (
	"context"
	"sync"

	"fixgo/internal/core"
	"fixgo/internal/proto"
)

// This file is the node's programmatic ingestion surface: the hooks a
// serving frontend (internal/gateway) uses to upload objects and read
// results without going through the fixctl wire path. Uploads advertise
// incrementally — one handle per message — instead of re-broadcasting the
// whole inventory the way AdvertiseAll does, so a gateway pushing many
// small objects does not quadratically re-announce its store.

// PutBlob stores a Blob on this node, advertises it to all peers, and —
// with Replicas > 1 — asynchronously pushes copies to the blob's ring
// successors. Literal Blobs live entirely in their Handle and need no
// advertisement or replication.
func (n *Node) PutBlob(data []byte) core.Handle {
	h := n.st.PutBlob(data)
	if !h.IsLiteral() {
		n.touch(h)
		n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: []core.Handle{h}})
		n.replicate([]core.Handle{h}, false, "")
	}
	return h
}

// PutBlobOwned stores a Blob whose Handle the caller already computed
// with a core.BlobHasher over exactly data, taking ownership of the slice
// — the streaming upload path's no-copy, no-rehash insert — then
// advertises and replicates like PutBlob. Implements
// gateway.OwnedBlobPutter.
func (n *Node) PutBlobOwned(h core.Handle, data []byte) core.Handle {
	h = n.st.PutBlobOwned(h, data)
	if !h.IsLiteral() {
		n.touch(h)
		n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: []core.Handle{h}})
		n.replicate([]core.Handle{h}, false, "")
	}
	return h
}

// PutTree stores a Tree on this node, advertises it to all peers, and —
// with Replicas > 1 — asynchronously pushes copies to the tree's ring
// successors.
func (n *Node) PutTree(entries []core.Handle) (core.Handle, error) {
	h, err := n.st.PutTree(entries)
	if err != nil {
		return core.Handle{}, err
	}
	n.touch(h)
	n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: []core.Handle{h}})
	n.replicate([]core.Handle{h}, false, "")
	return h, nil
}

// maxBatchFanout bounds how many of one batch's evaluations run
// concurrently on this node. The scheduler still places each item
// independently, so a batch spreads across workers; the bound only keeps
// one giant batch from monopolizing the local goroutine budget.
const maxBatchFanout = 32

// EvalBatch is the vectored submission entry (gateway.BatchEvaler): it
// forces every handle of one batch concurrently and reports per-item
// results and errors, both in input order. Items fail independently — a
// missing dependency in one slot does not poison its neighbors.
func (n *Node) EvalBatch(ctx context.Context, hs []core.Handle) ([]core.Handle, []error) {
	results := make([]core.Handle, len(hs))
	errs := make([]error, len(hs))
	sem := make(chan struct{}, maxBatchFanout)
	var wg sync.WaitGroup
	for i, h := range hs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, h core.Handle) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = n.Eval(ctx, h)
		}(i, h)
	}
	wg.Wait()
	return results, errs
}

// ObjectBytes returns the packed bytes of an object, fetching it from
// peers (or the ExtraFetcher) when it is not locally resident.
func (n *Node) ObjectBytes(ctx context.Context, h core.Handle) ([]byte, error) {
	if data, err := n.st.ObjectBytes(h); err == nil {
		n.touch(h)
		return data, nil
	}
	f := &clusterFetcher{n: n}
	return f.Fetch(ctx, h)
}

// JobPayload collects the locally resident definition closure of an
// accepted job — the invocation trees plus their blobs — bounded by a
// budget like a delegation push set. The gateway replicates it inside
// the job's edge-log entry so a peer adopting the job after this node
// dies still has the bytes the handle names. Implements
// gateway.JobPayloader.
func (n *Node) JobPayload(h core.Handle) []proto.PushedObject {
	const (
		maxObjects = 1024
		maxBytes   = 4 << 20
	)
	deps, _, ok := n.jobDeps(h)
	if !ok {
		return nil
	}
	out := make([]proto.PushedObject, 0, len(deps))
	total := 0
	for _, d := range deps {
		if len(out) >= maxObjects {
			break
		}
		data, err := n.st.ObjectBytes(d.h)
		if err != nil || total+len(data) > maxBytes {
			continue
		}
		out = append(out, proto.PushedObject{Handle: d.h, Data: data})
		total += len(data)
	}
	return out
}

// AbsorbPayload ingests a replicated job payload ahead of a takeover:
// every object is stored and advertised like an upload, so the adopted
// job's evaluation — local or delegated — finds its definition
// resident. Implements gateway.JobPayloader.
func (n *Node) AbsorbPayload(objs []proto.PushedObject) {
	if len(objs) == 0 {
		return
	}
	adverts := make([]core.Handle, 0, len(objs))
	for _, p := range objs {
		if err := n.st.PutObject(p.Handle, p.Data); err != nil {
			continue
		}
		n.touch(p.Handle)
		adverts = append(adverts, p.Handle)
	}
	if len(adverts) > 0 {
		n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: adverts})
	}
}
