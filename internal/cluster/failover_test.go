package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fixgo/internal/core"
	"fixgo/internal/objstore"
	"fixgo/internal/runtime"
	"fixgo/internal/transport"
)

// hbOpts returns NodeOptions with fast heartbeats for failure-detection
// tests. The timeout is generous relative to the interval so the race
// detector's slowdown cannot produce false evictions.
func hbOpts(base NodeOptions) NodeOptions {
	base.HeartbeatInterval = 20 * time.Millisecond
	base.HeartbeatTimeout = 300 * time.Millisecond
	return base
}

// holdRegistry registers a "hold" procedure that reports the named node
// on started and blocks until release closes, then returns its blob
// argument's length. Give each worker its own registry (closing over its
// name) to observe which node a delegated job landed on.
func holdRegistry(name string, started chan<- string, release <-chan struct{}) *runtime.Registry {
	reg := runtime.NewRegistry()
	reg.RegisterFunc("hold", func(api core.API, input core.Handle) (core.Handle, error) {
		entries, err := api.AttachTree(input)
		if err != nil {
			return core.Handle{}, err
		}
		b, err := api.AttachBlob(entries[2])
		if err != nil {
			return core.Handle{}, err
		}
		started <- name
		<-release
		return api.CreateBlob(core.LiteralU64(uint64(len(b))).LiteralData()), nil
	})
	return reg
}

// holdJob builds strict(application([lim, hold, blob])) on node n.
func holdJob(t *testing.T, n *Node, blob core.Handle) core.Handle {
	t.Helper()
	fn := n.Store().PutBlob(core.NativeFunctionBlob("hold"))
	tree, err := n.Store().PutTree(core.InvocationTree(core.DefaultLimits.Handle(), fn, blob))
	if err != nil {
		t.Fatal(err)
	}
	th, _ := core.Application(tree)
	enc, _ := core.Strict(th)
	return enc
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFailoverReplacesDeadWorker is the node-level E2E pin: a client and
// two workers; the worker holding the client's delegated job is killed
// mid-flight; the eval must complete on the survivor, and the dead peer
// must leave both Peers() and the passive object view.
func TestFailoverReplacesDeadWorker(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	client := NewNode("client", hbOpts(NodeOptions{Cores: 1, ClientOnly: true}))
	w1 := NewNode("w1", hbOpts(NodeOptions{Cores: 2, Registry: holdRegistry("w1", started, release)}))
	w2 := NewNode("w2", hbOpts(NodeOptions{Cores: 2, Registry: holdRegistry("w2", started, release)}))
	workers := map[string]*Node{"w1": w1, "w2": w2}
	defer client.Close()
	defer w1.Close()
	defer w2.Close()

	// A marker object resident on each worker: Hello advertises it, so
	// the client's view has entries to purge on eviction.
	marker1 := w1.Store().PutBlob(bytes.Repeat([]byte{0xA1}, 100))
	marker2 := w2.Store().PutBlob(bytes.Repeat([]byte{0xA2}, 100))
	Connect(client, w1, fastLink())
	Connect(client, w2, fastLink())
	Connect(w1, w2, fastLink())

	waitFor(t, "markers in client view", func() bool {
		return len(client.ViewOwners(marker1)) == 1 && len(client.ViewOwners(marker2)) == 1
	})

	blob := client.Store().PutBlob(bytes.Repeat([]byte{7}, 128))
	client.AdvertiseAll()
	enc := holdJob(t, client, blob)

	type evalOut struct {
		data []byte
		err  error
	}
	out := make(chan evalOut, 1)
	go func() {
		data, err := client.EvalBlob(context.Background(), enc)
		out <- evalOut{data, err}
	}()

	// Kill whichever worker the job landed on, then let survivors run.
	victim := <-started
	workers[victim].Close()
	close(release)

	res := <-out
	if res.err != nil {
		t.Fatalf("eval after worker kill: %v", res.err)
	}
	if v, _ := core.DecodeU64(res.data); v != 128 {
		t.Fatalf("len = %d, want 128", v)
	}

	survivor := "w2"
	victimMarker := marker1
	if victim == "w2" {
		survivor, victimMarker = "w1", marker2
	}
	waitFor(t, "dead peer evicted from Peers()", func() bool {
		peers := client.Peers()
		return len(peers) == 1 && peers[0] == survivor
	})
	waitFor(t, "dead peer purged from object view", func() bool {
		return len(client.ViewOwners(victimMarker)) == 0
	})
	st := client.NetStats()
	if st.Evicted == 0 {
		t.Fatalf("NetStats.Evicted = 0, want ≥ 1 (%+v)", st)
	}
	if st.JobsReplaced == 0 {
		t.Fatalf("NetStats.JobsReplaced = 0, want ≥ 1 (%+v)", st)
	}
}

// TestFailoverReconnectReplacesStrandedDelegation: a worker whose host
// silently hangs (no FIN, link stays up) and whose restarted process
// redials under the same ID must not strand the old link's delegations.
// Replacing the peer fails them with PeerLostError so the scheduler
// re-places the job on a survivor.
func TestFailoverReconnectReplacesStrandedDelegation(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	client := NewNode("client", NodeOptions{Cores: 1, ClientOnly: true})
	w1 := NewNode("w1", NodeOptions{Cores: 2, Registry: holdRegistry("w1", started, release)})
	w2 := NewNode("w2", NodeOptions{Cores: 2, Registry: holdRegistry("w2", started, release)})
	defer client.Close()
	defer w1.Close()
	defer w2.Close()
	Connect(client, w1, fastLink())
	Connect(client, w2, fastLink())

	enc := holdJob(t, client, client.Store().PutBlob(bytes.Repeat([]byte{3}, 96)))
	out := make(chan error, 1)
	var got []byte
	go func() {
		res, err := client.EvalBlob(context.Background(), enc)
		got = res
		out <- err
	}()
	victim := <-started

	// The "restarted" victim redials under its old identity. Its old
	// node stays blocked in the job (a hung host): the old link is
	// never cleanly closed from the worker side.
	replacement := NewNode(victim, NodeOptions{Cores: 2, Registry: holdRegistry(victim+"-new", started, release)})
	defer replacement.Close()
	Connect(client, replacement, fastLink())

	// The stranded delegation must fail over to a survivor (the other
	// worker: re-placement excludes the ID the job died on).
	survivor := <-started
	if survivor == victim {
		t.Fatalf("re-placed job landed back on %s", survivor)
	}
	close(release)
	if err := <-out; err != nil {
		t.Fatalf("eval after reconnect: %v", err)
	}
	if v, _ := core.DecodeU64(got); v != 96 {
		t.Fatalf("len = %d, want 96", v)
	}
	if st := client.NetStats(); st.JobsReplaced == 0 {
		t.Fatalf("NetStats.JobsReplaced = 0, want ≥ 1 (%+v)", st)
	}
}

// TestFailoverLocalFallback: a non-client node whose only worker peer
// dies mid-delegation re-evaluates the job locally as a last resort.
func TestFailoverLocalFallback(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	// Node a's own "hold" implementation never blocks: the fallback run
	// must complete without the test releasing anything twice.
	regA := runtime.NewRegistry()
	regA.RegisterFunc("hold", func(api core.API, input core.Handle) (core.Handle, error) {
		entries, err := api.AttachTree(input)
		if err != nil {
			return core.Handle{}, err
		}
		b, err := api.AttachBlob(entries[2])
		if err != nil {
			return core.Handle{}, err
		}
		return api.CreateBlob(core.LiteralU64(uint64(len(b))).LiteralData()), nil
	})
	// The job's input lives on b (so placement prefers b) and in a
	// backing object store (so the local fallback can still fetch it
	// once b is dead).
	data := bytes.Repeat([]byte{5}, 777)
	h := core.BlobHandle(data)
	os := objstore.New(objstore.Config{})
	if err := os.PutHandle(context.Background(), h, data); err != nil {
		t.Fatal(err)
	}
	a := NewNode("a", hbOpts(NodeOptions{Cores: 2, Registry: regA, ExtraFetcher: os}))
	b := NewNode("b", hbOpts(NodeOptions{Cores: 2, Registry: holdRegistry("b", started, release), ExtraFetcher: os}))
	defer a.Close()
	defer b.Close()
	if err := b.Store().PutObject(h, data); err != nil {
		t.Fatal(err)
	}
	Connect(a, b, fastLink())

	enc := holdJob(t, a, h)
	out := make(chan error, 1)
	var got []byte
	go func() {
		res, err := a.EvalBlob(context.Background(), enc)
		got = res
		out <- err
	}()
	if v := <-started; v != "b" {
		t.Fatalf("job started on %s, want b (locality placement)", v)
	}
	b.Close()
	close(release)
	if err := <-out; err != nil {
		t.Fatalf("eval after losing the only worker: %v", err)
	}
	if v, _ := core.DecodeU64(got); v != 777 {
		t.Fatalf("len = %d, want 777", v)
	}
	st := a.NetStats()
	if st.JobsLocalFallback == 0 {
		t.Fatalf("NetStats.JobsLocalFallback = 0, want ≥ 1 (%+v)", st)
	}
}

// TestFailoverClientOnlyNoWorkers: a client-only node fails a job with
// ErrNoWorkers both when no worker was ever there and when the last
// worker dies mid-delegation.
func TestFailoverClientOnlyNoWorkers(t *testing.T) {
	t.Run("never had workers", func(t *testing.T) {
		client := NewNode("client", NodeOptions{Cores: 1, ClientOnly: true})
		defer client.Close()
		enc := lenJob(t, client, client.Store().PutBlob(bytes.Repeat([]byte{1}, 64)))
		_, err := client.Eval(context.Background(), enc)
		if !errors.Is(err, ErrNoWorkers) {
			t.Fatalf("err = %v, want ErrNoWorkers", err)
		}
	})
	t.Run("last worker dies mid-flight", func(t *testing.T) {
		started := make(chan string, 8)
		release := make(chan struct{})
		defer close(release)
		client := NewNode("client", hbOpts(NodeOptions{Cores: 1, ClientOnly: true}))
		w := NewNode("w", hbOpts(NodeOptions{Cores: 2, Registry: holdRegistry("w", started, release)}))
		defer client.Close()
		defer w.Close()
		Connect(client, w, fastLink())
		enc := holdJob(t, client, core.LiteralU64(1))
		out := make(chan error, 1)
		go func() {
			_, err := client.Eval(context.Background(), enc)
			out <- err
		}()
		<-started
		w.Close()
		err := <-out
		if !errors.Is(err, ErrNoWorkers) {
			t.Fatalf("err = %v, want wrapped ErrNoWorkers", err)
		}
		st := client.NetStats()
		if st.ReplaceFailures == 0 {
			t.Fatalf("NetStats.ReplaceFailures = 0 (%+v)", st)
		}
	})
}

// TestFailoverHeartbeatEvictsPartitionedPeer: a one-way partition (b's
// sends blackholed) must get b evicted on a — the deaf side — by the
// heartbeat timeout, while b (which still hears a) keeps the link until
// a's eviction closes it.
func TestFailoverHeartbeatEvictsPartitionedPeer(t *testing.T) {
	a := NewNode("a", hbOpts(NodeOptions{Cores: 1}))
	b := NewNode("b", hbOpts(NodeOptions{Cores: 1}))
	defer a.Close()
	defer b.Close()

	pa, pb := transport.Pipe(fastLink())
	cb := transport.Chaos(pb, transport.ChaosConfig{})
	a.AttachPeer(pa)
	b.AttachPeer(cb)
	waitPeer(a, "b")
	waitPeer(b, "a")

	cb.Partition() // b goes silent toward a; a→b stays healthy
	waitFor(t, "a to evict b", func() bool { return len(a.Peers()) == 0 })
	st := a.NetStats()
	if st.Evicted != 1 {
		t.Fatalf("a evicted %d peers, want 1", st.Evicted)
	}
	if st.HeartbeatsSent == 0 {
		t.Fatal("no heartbeats were sent")
	}
	// a's eviction closed the shared link, so b loses a too.
	waitFor(t, "b to drop the closed link", func() bool { return len(b.Peers()) == 0 })
}

// TestFailoverCloseRecvRace is the Close-vs-recvLoop shutdown pin: nodes
// are closed while peers are mid-broadcast and mid-eval. Run under
// -race; the test fails on panic, data race, or deadlock (every Eval
// must return).
func TestFailoverCloseRecvRace(t *testing.T) {
	reg := countRegistry()
	for round := 0; round < 4; round++ {
		nodes := make([]*Node, 4)
		for i := range nodes {
			nodes[i] = NewNode(fmt.Sprintf("n%d", i), NodeOptions{
				Cores:             2,
				Registry:          reg,
				Seed:              int64(round),
				HeartbeatInterval: 5 * time.Millisecond,
				HeartbeatTimeout:  50 * time.Millisecond,
			})
		}
		blobs := make([]core.Handle, len(nodes))
		for i, n := range nodes {
			blobs[i] = n.Store().PutBlob(bytes.Repeat([]byte{byte(i)}, 200+i))
		}
		FullMesh(fastLink(), nodes...)

		stop := make(chan struct{})
		var wg sync.WaitGroup
		// Evaluators: nodes 0 and 1 submit jobs against every node's blob.
		for _, idx := range []int{0, 1} {
			wg.Add(1)
			go func(n *Node) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					enc := lenJob(t, n, blobs[i%len(blobs)])
					_, _ = n.EvalBlob(ctx, enc) // errors are expected once peers die
					cancel()
				}
			}(nodes[idx])
		}
		// Broadcasters: keep Advertise traffic in flight during closes.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, n := range nodes {
					n.AdvertiseAll()
				}
			}
		}()

		time.Sleep(20 * time.Millisecond)
		// Close every node concurrently, mid-traffic.
		var closers sync.WaitGroup
		for _, n := range nodes {
			closers.Add(1)
			go func(n *Node) { defer closers.Done(); n.Close() }(n)
		}
		closers.Wait()
		close(stop)

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("deadlock: workers did not return after Close")
		}
	}
}
