package cluster

import (
	"fixgo/internal/durable"
	"fixgo/internal/obsv"
	"fixgo/internal/storage"
)

// NewNodeMetrics builds a worker's observability surface: a registry of
// fixpoint_-prefixed families sampled from the node's NetStats, CPU
// accounting, and (optionally) durable store, plus a tracer whose stage
// histogram lives in the same registry. cmd/fixpoint mounts the pair on
// its -debug-addr listener and passes the tracer as NodeOptions.Tracer
// so delegated jobs are recorded under the gateway's propagated trace
// IDs. durableStats may be nil (no -data-dir).
func NewNodeMetrics(n *Node, durableStats func() durable.Stats) (*obsv.Registry, *obsv.Tracer) {
	reg := obsv.NewRegistry()
	stages := reg.HistogramVec("fixpoint_stage_seconds",
		"Latency of traced pipeline stages on this worker, by span name", "stage")
	tr := obsv.NewTracer(256, stages)
	reg.GaugeFunc("fixpoint_traces_retained",
		"Finished traces currently held in the trace ring",
		func() float64 { return float64(tr.Retained()) })
	reg.Collect(func(emit func(obsv.Sample)) {
		counter := func(name, help string, v float64) {
			emit(obsv.Sample{Name: "fixpoint_" + name, Help: help, Type: obsv.TypeCounter, Value: v})
		}
		gauge := func(name, help string, v float64) {
			emit(obsv.Sample{Name: "fixpoint_" + name, Help: help, Type: obsv.TypeGauge, Value: v})
		}

		ns := n.NetStats()
		gauge("cluster_peers", "Live cluster peers", float64(ns.Peers))
		counter("cluster_peers_evicted_total", "Peers evicted on link error or heartbeat timeout", float64(ns.Evicted))
		counter("cluster_heartbeats_sent_total", "Ping probes sent", float64(ns.HeartbeatsSent))
		counter("cluster_jobs_delegated_total", "Jobs shipped to peers", float64(ns.JobsDelegated))
		counter("cluster_jobs_replaced_total", "Delegations re-placed after their worker died", float64(ns.JobsReplaced))
		counter("cluster_jobs_local_fallback_total", "Jobs evaluated locally after delegation failed", float64(ns.JobsLocalFallback))
		counter("cluster_replace_failures_total", "Jobs that could not be re-placed", float64(ns.ReplaceFailures))
		gauge("cluster_replicas", "Configured replication factor", float64(ns.Replicas))
		gauge("cluster_ring_members", "Consistent-hash ring size", float64(ns.RingMembers))
		counter("cluster_replicas_sent_total", "Replica pushes for fresh writes", float64(ns.ReplicasSent))
		counter("cluster_replicas_acked_total", "Replica push acknowledgements", float64(ns.ReplicasAcked))
		counter("cluster_repair_passes_total", "Anti-entropy repair passes", float64(ns.RepairPasses))
		counter("cluster_repair_replicas_sent_total", "Replica pushes sent by repair passes", float64(ns.RepairReplicasSent))

		// Usage(0) yields the raw accumulated core-time (Wall/Idle are
		// meaningless without an interval, and not emitted).
		u := n.Stats().Usage(0)
		gauge("cores", "Logical core slots", float64(u.Cores))
		counter("cpu_user_seconds_total", "Core-time spent running user code", u.User.Seconds())
		counter("cpu_system_seconds_total", "Core-time spent in runtime bookkeeping", u.System.Seconds())
		counter("cpu_iowait_seconds_total", "Core-time a claimed slot sat waiting for I/O", u.IOWait.Seconds())
		counter("tasks_total", "Completed tasks", float64(u.Tasks))

		if ss := n.StorageStats(); ss != nil {
			EmitStorageStats(ss, counter, gauge)
		}

		if durableStats != nil {
			ds := durableStats()
			gauge("durable_objects", "Distinct objects in the durable index", float64(ds.Objects))
			gauge("durable_memo_entries", "Thunk and encode journal entries", float64(ds.MemoEntries))
			gauge("durable_pack_bytes", "On-disk pack footprint", float64(ds.PackBytes))
			counter("durable_appends_total", "Object records appended this process", float64(ds.Appends))
			counter("durable_memo_appends_total", "Memo journal records appended this process", float64(ds.MemoAppends))
			gauge("durable_truncated_tail", "Torn records dropped during recovery", float64(ds.TruncatedTail))
			counter("durable_gc_passes_total", "Durable store GC passes", float64(ds.GCPasses))
			counter("durable_gc_dropped_total", "Records dropped by durable GC", float64(ds.GCDropped))
		}
	})
	return reg, tr
}

// EmitStorageStats renders a storage.Stats snapshot through the given
// counter/gauge emitters as the *_storage_* metric family set. The
// worker registry above and the gateway's collector (internal/gateway)
// both call it — under their respective fixpoint_/fixgate_ prefixes — so
// dashboards read the same shape on both daemons.
func EmitStorageStats(ss *storage.Stats, counter, gauge func(name, help string, v float64)) {
	counter("storage_lfc_hits_total", "Reads served by the local file cache", float64(ss.LFCHits))
	counter("storage_lfc_misses_total", "Reads that fell through the local file cache", float64(ss.LFCMisses))
	counter("storage_lfc_fills_total", "Local file cache fills", float64(ss.LFCFills))
	counter("storage_lfc_evictions_total", "Local file cache evictions under the byte budget", float64(ss.LFCEvictions))
	gauge("storage_lfc_bytes", "Resident local file cache volume", float64(ss.LFCBytes))
	gauge("storage_lfc_budget_bytes", "Configured local file cache byte budget", float64(ss.LFCBudget))
	gauge("storage_lfc_entries", "Resident local file cache objects", float64(ss.LFCEntries))
	counter("storage_remote_gets_total", "Reads served by the remote tier", float64(ss.RemoteGets))
	counter("storage_remote_puts_total", "Objects written to the remote tier", float64(ss.RemotePuts))
	counter("storage_remote_deletes_total", "Objects removed from the remote tier", float64(ss.RemoteDeletes))
	counter("storage_remote_errors_total", "Remote tier operation failures", float64(ss.RemoteErrors))
	gauge("storage_uploads_pending", "Async remote uploads queued or in flight", float64(ss.UploadsPending))
	counter("storage_uploads_done_total", "Async remote uploads applied", float64(ss.UploadsDone))
	counter("storage_upload_errors_total", "Async remote uploads failed", float64(ss.UploadErrors))
	counter("storage_demoted_total", "Hot copies evicted after demotion to the tier", float64(ss.Demoted))
	counter("storage_demote_passes_total", "Anti-entropy demotion sweeps", float64(ss.DemotePasses))
	counter("storage_tier_fetches_total", "Fetch misses recovered from the tier", float64(ss.TierFetches))
	counter("storage_tier_fetch_misses_total", "Fetch misses the tier could not recover", float64(ss.TierFetchMisses))
}
