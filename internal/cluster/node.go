// Package cluster implements the distributed Fixpoint execution engine of
// section 4.2: nodes that exchange Fix objects and delegate jobs over
// transport links, each running an independent dataflow-aware scheduler.
//
// There is no centralized scheduler. Each node keeps a passive "view" of
// which objects exist on which peers (an objstore.ReplicaTracker): on
// connect, nodes exchange lists of locally resident objects; thereafter
// the view advances as objects and results move. Given an Encode to
// force, the local scheduler walks the job's definition closure,
// estimates the bytes that would have to move to each candidate node
// (including the hinted output size), and delegates to the cheapest — or
// runs locally when it already is the cheapest.
//
// Object lookup is two-tiered. Every node also derives a consistent-hash
// ring (objstore.Ring) over the live worker membership; with
// NodeOptions.Replicas R > 1, each write is synchronously stored at the
// writer and asynchronously pushed to R−1 ring successors, the fetcher
// consults the ring's owner list before the passive view, and peer
// eviction triggers an anti-entropy repair pass that re-replicates
// under-replicated objects onto the ring's new successors (replicate.go).
// The passive view remains the fallback for objects written before
// replication was enabled or not yet migrated onto the ring.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fixgo/internal/core"
	"fixgo/internal/objstore"
	"fixgo/internal/obsv"
	"fixgo/internal/proto"
	"fixgo/internal/runtime"
	"fixgo/internal/stats"
	"fixgo/internal/storage"
	"fixgo/internal/store"
	"fixgo/internal/transport"
)

// NodeOptions configures a cluster node.
type NodeOptions struct {
	// Cores, MemoryBytes, InternalIO, OversubscribeCores and Registry are
	// passed through to the node's runtime engine.
	Cores              int
	MemoryBytes        uint64
	InternalIO         bool
	OversubscribeCores int
	Registry           *runtime.Registry
	// NoLocality is the Fig. 8b ablation: placement ignores the view and
	// picks uniformly at random.
	NoLocality bool
	// ClientOnly marks a node that submits jobs and serves objects but
	// never executes placements (the experiment "client").
	ClientOnly bool
	// MaxHops bounds the delegation depth of a dataflow (default 256;
	// each level of a job tree may hop once, and a received Encode is
	// never re-delegated, so this is a runaway guard, not a tuning
	// knob).
	MaxHops int
	// PushLimit is the largest Blob shipped inside a Job message;
	// larger dependencies are fetched on demand (default 4096).
	PushLimit int
	// ExtraFetcher supplies objects found on no peer (e.g. an object
	// store).
	ExtraFetcher runtime.Fetcher
	// Seed makes NoLocality placement deterministic.
	Seed int64
	// MaxEvalDepth passes through to the engine.
	MaxEvalDepth int
	// HeartbeatInterval enables failure detection: every interval the
	// node pings each peer and evicts peers not heard from within
	// HeartbeatTimeout. Zero disables heartbeats (peers are then evicted
	// only on receive-loop errors, i.e. hard link closes).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence window after which a peer is
	// declared dead (default 4×HeartbeatInterval). Any received message
	// counts as liveness, not just Pongs.
	HeartbeatTimeout time.Duration
	// MaxReplacements bounds how many times a delegated job is re-placed
	// after losing its worker before the node gives up (runs the job
	// locally, or fails it when ClientOnly). Default 3.
	MaxReplacements int
	// Replicas is the replication factor R: every write (PutBlob,
	// PutTree, eval outputs) is stored synchronously at the writer and
	// pushed asynchronously to R−1 consistent-hash ring successors, so
	// the object survives the loss of any R−1 holders. 1 (the default)
	// disables replication — the writer's copy is the only copy.
	Replicas int
	// RingVnodes is the virtual-node count per member on the placement
	// ring (default objstore.DefaultVnodes). All nodes in a cluster must
	// agree on it, or their rings diverge.
	RingVnodes int
	// Tier, when set, is the node's cold storage tier (internal/storage):
	// the demotion pass spills cold objects into it and the fetcher's
	// miss path ends with a tier lookup. Nil disables tiering. The tier's
	// lifecycle is owned by the caller; Close does not close it.
	Tier storage.Storage
	// DemoteAfter is the idle window after which a resident object
	// becomes a demotion candidate. Zero disables the demotion loop even
	// with a Tier set (the tier then only serves fetch misses).
	DemoteAfter time.Duration
	// DemoteEvery is the demotion sweep interval (default DemoteAfter/2).
	DemoteEvery time.Duration
	// Tracer, when set, gives this node a local trace ring: delegated
	// jobs arriving with a trace ID in their Job header are recorded
	// under that same ID (eval span, outcome), so a worker's -debug-addr
	// can answer "what did the gateway's trace abc do here". Nil disables
	// worker-side recording; spans still flow back to the delegator via
	// the Result header's EvalNS field.
	Tracer *obsv.Tracer
}

func (o NodeOptions) withDefaults() NodeOptions {
	if o.MaxHops <= 0 {
		o.MaxHops = 256
	}
	if o.PushLimit <= 0 {
		o.PushLimit = 4096
	}
	if o.HeartbeatInterval > 0 && o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 4 * o.HeartbeatInterval
	}
	if o.MaxReplacements <= 0 {
		o.MaxReplacements = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.RingVnodes <= 0 {
		o.RingVnodes = objstore.DefaultVnodes
	}
	if o.DemoteAfter > 0 && o.DemoteEvery <= 0 {
		o.DemoteEvery = o.DemoteAfter / 2
	}
	return o
}

// ErrNoWorkers reports that a placement found no live worker peer and
// the node cannot run the job itself (ClientOnly). A gateway fronting
// the cluster maps it to 503 Service Unavailable.
var ErrNoWorkers = errors.New("cluster: no live worker peers")

// ErrNodeClosed reports an operation on a node after Close.
var ErrNodeClosed = errors.New("cluster: node closed")

// PeerLostError reports a delegation interrupted by the death of the
// peer it was parked on; the scheduler reacts by re-placing the job.
type PeerLostError struct {
	// Peer is the dead peer's node identifier.
	Peer string
	// Cause is the failure that evicted the peer (receive error,
	// heartbeat timeout, or send failure).
	Cause error
}

// Error renders the lost peer and the eviction cause.
func (e *PeerLostError) Error() string {
	return fmt.Sprintf("cluster: peer %s lost: %v", e.Peer, e.Cause)
}

// Unwrap exposes the eviction cause.
func (e *PeerLostError) Unwrap() error { return e.Cause }

// NetStats is a node's failure-handling and delegation counters,
// surfaced by the gateway at /v1/stats and /metrics.
type NetStats struct {
	// Peers is the current live peer count.
	Peers int `json:"peers"`
	// Evicted counts peers removed on link error or heartbeat timeout.
	Evicted uint64 `json:"evicted"`
	// HeartbeatsSent counts Ping probes sent.
	HeartbeatsSent uint64 `json:"heartbeats_sent"`
	// JobsDelegated counts jobs shipped to peers.
	JobsDelegated uint64 `json:"jobs_delegated"`
	// JobsReplaced counts delegations re-placed after their worker died.
	JobsReplaced uint64 `json:"jobs_replaced"`
	// JobsLocalFallback counts jobs evaluated locally as a last resort
	// after delegation failed.
	JobsLocalFallback uint64 `json:"jobs_local_fallback"`
	// ReplaceFailures counts jobs that could not be re-placed at all
	// (no surviving candidate, or the attempt bound was exhausted on a
	// ClientOnly node).
	ReplaceFailures uint64 `json:"replace_failures"`
	// Replicas is the configured replication factor R (1 = replication
	// off).
	Replicas int `json:"replicas"`
	// RingMembers is the current consistent-hash ring size: live worker
	// peers, plus this node unless it is client-only.
	RingMembers int `json:"ring_members"`
	// ReplicasSent counts Replicate pushes for fresh writes.
	ReplicasSent uint64 `json:"replicas_sent"`
	// ReplicasAcked counts ReplicateAck confirmations received — for
	// write and repair pushes alike (the ack carries no origin marker),
	// so the backlog gauge is ReplicasSent+RepairReplicasSent minus
	// ReplicasAcked.
	ReplicasAcked uint64 `json:"replicas_acked"`
	// RepairPasses counts anti-entropy passes triggered by membership
	// changes.
	RepairPasses uint64 `json:"repair_passes"`
	// RepairReplicasSent counts Replicate pushes sent by repair passes
	// to re-establish R copies after a holder was lost.
	RepairReplicasSent uint64 `json:"repair_replicas_sent"`
}

// Node is one Fixpoint instance in a distributed deployment.
type Node struct {
	id   string
	opts NodeOptions
	st   *store.Store
	eng  *runtime.Engine
	tier tierState // demotion bookkeeping; counters live even with Tier nil

	done chan struct{} // closed by Close; stops the heartbeat and demote loops

	mu      sync.Mutex
	peers   map[string]*peer
	view    *objstore.ReplicaTracker // passive object view: key → believed holders
	ring    *objstore.Ring           // consistent-hash placement ring over live members
	fetchW  map[core.Handle]*fetchWait
	jobW    map[core.Handle][]*jobWaiter
	pending map[string]int // node id → jobs in flight there (scheduling load)
	rng     *rand.Rand
	closed  bool
	net     NetStats // counters only; Peers is filled at snapshot time
}

type peer struct {
	id       string
	role     byte
	conn     transport.Conn
	sendMu   sync.Mutex
	scratch  []byte       // encode scratch, guarded by sendMu
	lastSeen atomic.Int64 // UnixNano of the last received message

	// Heartbeat-send state: pings go out on a goroutine so one stalled
	// link cannot block failure detection for every other peer.
	pingBusy  atomic.Bool
	pingStart atomic.Int64 // UnixNano the in-flight ping send began
}

// maxSendScratch caps the encode scratch a peer retains between sends;
// a single huge Object push must not pin its buffer on the peer forever.
const maxSendScratch = 1 << 20

// send serializes one message onto the link. Every transport.Conn.Send
// implementation finishes with the buffer before returning (mem copies,
// tcp writes through), so the encode scratch is reusable across sends —
// sendMu already serializes them.
func (p *peer) send(m *proto.Message) error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	buf := m.AppendEncode(p.scratch[:0])
	if cap(buf) <= maxSendScratch {
		p.scratch = buf
	}
	return p.conn.Send(buf)
}

type fetchWait struct {
	done chan struct{}
	miss chan string
	data []byte // the fetched bytes, set before done closes on success
	err  error
}

type jobResult struct {
	result core.Handle
	evalNS int64 // the worker's eval wall time, from the Result header
	err    error
}

// jobWaiter is one outstanding delegation: the channel its Offload call
// waits on, pinned to the peer the job was shipped to so eviction can
// fail exactly the delegations parked on the dead node.
type jobWaiter struct {
	ch     chan jobResult // buffered (cap 1); at most one delivery
	peerID string
}

// NewNode creates a node with the given identifier.
func NewNode(id string, opts NodeOptions) *Node {
	opts = opts.withDefaults()
	n := &Node{
		id:      id,
		opts:    opts,
		st:      store.New(),
		done:    make(chan struct{}),
		peers:   make(map[string]*peer),
		view:    objstore.NewReplicaTracker(),
		fetchW:  make(map[core.Handle]*fetchWait),
		jobW:    make(map[core.Handle][]*jobWaiter),
		pending: make(map[string]int),
		rng:     rand.New(rand.NewSource(opts.Seed ^ int64(fnvHash(id)))),
	}
	n.tier.lastTouch = make(map[core.Handle]time.Time)
	n.rebuildRingLocked()
	n.eng = runtime.New(n.st, runtime.Options{
		Cores:              opts.Cores,
		MemoryBytes:        opts.MemoryBytes,
		InternalIO:         opts.InternalIO,
		OversubscribeCores: opts.OversubscribeCores,
		Registry:           opts.Registry,
		Fetcher:            &clusterFetcher{n: n},
		Delegator:          n,
		MaxEvalDepth:       opts.MaxEvalDepth,
	})
	if opts.HeartbeatInterval > 0 {
		go n.heartbeatLoop()
	}
	if opts.Tier != nil && opts.DemoteAfter > 0 {
		go n.demoteLoop()
	}
	return n
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// Store returns the node's runtime storage.
func (n *Node) Store() *store.Store { return n.st }

// Engine returns the node's execution engine.
func (n *Node) Engine() *runtime.Engine { return n.eng }

// Stats returns the node's CPU-state collector.
func (n *Node) Stats() *stats.Collector { return n.eng.Stats() }

// SetTracer installs the worker-side tracer after construction — the
// registry owning its stage histogram (NewNodeMetrics) needs the node
// first, so the boot path closes the loop with this setter before
// attaching any peer.
func (n *Node) SetTracer(tr *obsv.Tracer) {
	n.mu.Lock()
	n.opts.Tracer = tr
	n.mu.Unlock()
}

// tracer reads the worker-side tracer (nil when tracing is off).
func (n *Node) tracer() *obsv.Tracer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.opts.Tracer
}

// Eval evaluates a Fix object, with the distributed scheduler free to
// place work anywhere in the cluster.
func (n *Node) Eval(ctx context.Context, h core.Handle) (core.Handle, error) {
	return n.eng.Eval(withHops(ctx, 0), h)
}

// EvalBlob evaluates h and fetches the resulting Blob's contents.
func (n *Node) EvalBlob(ctx context.Context, h core.Handle) ([]byte, error) {
	return n.eng.EvalBlob(withHops(ctx, 0), h)
}

// Close shuts down all peer links, stops the heartbeat loop, and fails
// every outstanding delegation and fetch wait with ErrNodeClosed so no
// Eval blocked on a peer hangs forever. Close is idempotent and safe to
// call while receive loops and broadcasts are in flight.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.done)
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	// Clear the peer map so the recv loops' subsequent evictPeer calls
	// no-op: a clean shutdown is not an eviction and must not inflate
	// the Evicted counter (or leave NetStats().Peers nonzero).
	n.peers = make(map[string]*peer)
	var lost []*jobWaiter
	for enc, ws := range n.jobW {
		lost = append(lost, ws...)
		delete(n.jobW, enc)
	}
	var waits []*fetchWait
	for k, w := range n.fetchW {
		delete(n.fetchW, k)
		waits = append(waits, w)
	}
	n.mu.Unlock()
	for _, p := range peers {
		p.conn.Close()
	}
	for _, w := range lost {
		w.ch <- jobResult{err: ErrNodeClosed}
	}
	for _, w := range waits {
		w.err = ErrNodeClosed
		close(w.done)
	}
}

// evictPeer removes a dead peer: its link is closed, its entries leave
// the passive object view (so the placer and fetcher stop routing to
// it), its load accounting is dropped, delegations parked on it fail
// with PeerLostError (triggering re-placement), and in-progress fetches
// are nudged to try their next owner.
func (n *Node) evictPeer(p *peer, cause error) {
	n.mu.Lock()
	if cur, ok := n.peers[p.id]; !ok || cur != p {
		// Already evicted, or replaced by a newer link (reconnect).
		n.mu.Unlock()
		_ = p.conn.Close()
		return
	}
	delete(n.peers, p.id)
	n.net.Evicted++
	lost := n.stripPeerLocked(p.id)
	wasWorker := p.role == proto.RoleWorker
	if wasWorker {
		n.rebuildRingLocked()
	}
	waits := make([]*fetchWait, 0, len(n.fetchW))
	for _, w := range n.fetchW {
		waits = append(waits, w)
	}
	n.mu.Unlock()

	_ = p.conn.Close()
	err := &PeerLostError{Peer: p.id, Cause: cause}
	for _, w := range lost {
		w.ch <- jobResult{err: err}
	}
	for _, w := range waits {
		select {
		case w.miss <- p.id:
		default:
		}
	}
	// The worker membership just shrank: objects that kept a replica on
	// the dead node are under-replicated, and some keys now map to new
	// ring successors. Re-establish R copies. (A departing client held
	// no ring slot — nothing to repair.)
	if wasWorker {
		n.repairKick()
	}
}

// stripPeerLocked removes every trace of a peer incarnation that can no
// longer deliver: its object-view entries, its load accounting, and its
// parked delegations (returned for the caller to fail outside the
// lock). Callers hold n.mu.
func (n *Node) stripPeerLocked(id string) []*jobWaiter {
	n.view.DropOwner(id)
	delete(n.pending, id)
	var lost []*jobWaiter
	for enc, ws := range n.jobW {
		keep := ws[:0]
		for _, w := range ws {
			if w.peerID == id {
				lost = append(lost, w)
			} else {
				keep = append(keep, w)
			}
		}
		if len(keep) == 0 {
			delete(n.jobW, enc)
		} else {
			n.jobW[enc] = keep
		}
	}
	return lost
}

// heartbeatLoop pings every peer each HeartbeatInterval and evicts peers
// silent for longer than HeartbeatTimeout. Any received message counts
// as liveness, so a busy link never needs its Pongs to win races.
func (n *Node) heartbeatLoop() {
	ticker := time.NewTicker(n.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		n.mu.Lock()
		peers := make([]*peer, 0, len(n.peers))
		for _, p := range n.peers {
			peers = append(peers, p)
		}
		n.net.HeartbeatsSent += uint64(len(peers))
		n.mu.Unlock()
		ping := &proto.Message{Type: proto.TypePing, From: n.id}
		for _, p := range peers {
			if now.Sub(time.Unix(0, p.lastSeen.Load())) > n.opts.HeartbeatTimeout {
				n.evictPeer(p, fmt.Errorf("no message within the %v heartbeat timeout", n.opts.HeartbeatTimeout))
				continue
			}
			// Sends run off-loop so one stalled link (e.g. a TCP peer
			// whose inbound side is alive but whose outbound buffer is
			// full) cannot block pinging and timeout-evicting the rest.
			// At most one ping send is in flight per peer; a send still
			// stuck after a full timeout window is itself a failure.
			if p.pingBusy.CompareAndSwap(false, true) {
				p.pingStart.Store(now.UnixNano())
				go func(p *peer) {
					err := p.send(ping)
					p.pingBusy.Store(false)
					if err != nil {
						n.evictPeer(p, fmt.Errorf("heartbeat send: %w", err))
					}
				}(p)
			} else if now.Sub(time.Unix(0, p.pingStart.Load())) > n.opts.HeartbeatTimeout {
				n.evictPeer(p, fmt.Errorf("heartbeat send stalled beyond the %v timeout", n.opts.HeartbeatTimeout))
			}
		}
	}
}

// NetStats snapshots the node's failure-handling and replication
// counters.
func (n *Node) NetStats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.net
	out.Peers = len(n.peers)
	out.Replicas = n.opts.Replicas
	out.RingMembers = n.ring.Len()
	return out
}

// ViewOwners lists the peers the passive object view currently locates
// h on (empty when no live peer is known to hold it).
func (n *Node) ViewOwners(h core.Handle) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.Owners(keyOf(h))
}

// ResolvableHint reports whether a gossiped result handle could be
// served by this node right now: resident in the local store (literals
// always are) or locatable on a live peer via the passive object view.
// Implements the gateway's HintResolver facet behind cache-warm gossip.
func (n *Node) ResolvableHint(h core.Handle) bool {
	return n.st.Contains(h) || len(n.ViewOwners(h)) > 0
}

func (n *Node) isClosed() bool {
	select {
	case <-n.done:
		return true
	default:
		return false
	}
}

// role returns the node's wire role.
func (n *Node) role() byte {
	if n.opts.ClientOnly {
		return proto.RoleClient
	}
	return proto.RoleWorker
}

// AttachPeer adopts a transport link: sends our Hello (identity, role, and
// the full list of resident objects) and starts the receive loop. The peer
// becomes routable once its own Hello arrives.
func (n *Node) AttachPeer(conn transport.Conn) {
	hello := &proto.Message{Type: proto.TypeHello, From: n.id, Role: n.role(), Adverts: n.localAdverts()}
	_ = conn.Send(hello.Encode())
	go n.recvLoop(conn)
}

func (n *Node) localAdverts() []core.Handle {
	var out []core.Handle
	n.st.ForEach(func(h core.Handle, size uint64) { out = append(out, h) })
	return out
}

// Peers lists connected peer IDs.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for id := range n.peers {
		out = append(out, id)
	}
	return out
}

// AdvertiseAll broadcasts the node's current object inventory to all
// peers. Call after bulk-loading data onto an already connected node.
func (n *Node) AdvertiseAll() {
	n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: n.localAdverts()})
}

func (n *Node) broadcast(m *proto.Message) {
	n.mu.Lock()
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		_ = p.send(m)
	}
}

func (n *Node) recvLoop(conn transport.Conn) {
	var p *peer
	for {
		raw, err := conn.Recv()
		if err != nil {
			// io.EOF and transport.ErrClosed are orderly shutdowns; any
			// other error is a link failure. Either way the peer is
			// gone: evict it so stranded delegations re-place and the
			// view stops routing to it.
			if p != nil {
				n.evictPeer(p, err)
			}
			return
		}
		m, err := proto.Decode(raw)
		if err != nil {
			continue // malformed frame: ignore
		}
		if p == nil {
			if m.Type != proto.TypeHello {
				continue // protocol requires Hello first
			}
			np := &peer{id: m.From, role: m.Role, conn: conn}
			np.lastSeen.Store(time.Now().UnixNano())
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				_ = conn.Close()
				return
			}
			old := n.peers[m.From]
			n.peers[m.From] = np
			if np.role == proto.RoleWorker {
				// Client-only peers are not placement targets; their
				// arrival cannot change the ring.
				n.rebuildRingLocked()
			}
			var lost []*jobWaiter
			if old != nil {
				// A reconnect replaces the previous link. Delegations
				// parked on the old incarnation can never complete (its
				// replies are gone with the link), and evictPeer will
				// no-op on it now that the map points at the new peer —
				// so fail them here, and reset the old incarnation's
				// view entries and load accounting. The fresh Hello's
				// adverts repopulate the view right below.
				lost = n.stripPeerLocked(m.From)
			}
			n.mu.Unlock()
			if old != nil {
				_ = old.conn.Close()
				err := &PeerLostError{Peer: m.From, Cause: errors.New("peer reconnected; previous link abandoned")}
				for _, w := range lost {
					w.ch <- jobResult{err: err}
				}
			}
			p = np
			// A grown worker membership remaps some keys to new ring
			// successors; migrate replicas there (no-op with replication
			// off). A joining client changes nothing, so skip the store
			// walk — a flapping client link must not cost repeated
			// cluster-wide repair passes.
			if np.role == proto.RoleWorker {
				n.repairKick()
			}
		}
		p.lastSeen.Store(time.Now().UnixNano())
		n.handle(m)
	}
}

func (n *Node) handle(m *proto.Message) {
	switch m.Type {
	case proto.TypeHello, proto.TypeAdvertise:
		n.mu.Lock()
		for _, h := range m.Adverts {
			n.viewAddLocked(h, m.From)
		}
		n.mu.Unlock()
	case proto.TypeRequest:
		go n.serveRequest(m)
	case proto.TypeObject:
		n.ingestObject(m.From, m.Handle, m.Data)
	case proto.TypeMissing:
		n.mu.Lock()
		n.view.Remove(keyOf(m.Handle), m.From)
		w := n.fetchW[keyOf(m.Handle)]
		n.mu.Unlock()
		if w != nil {
			select {
			case w.miss <- m.From:
			default:
			}
		}
	case proto.TypeJob:
		go n.serveJob(m)
	case proto.TypeResult:
		n.mu.Lock()
		waiters := n.jobW[m.Handle]
		delete(n.jobW, m.Handle)
		n.mu.Unlock()
		res := jobResult{result: m.Result, evalNS: m.EvalNS}
		if m.Err != "" {
			res.err = fmt.Errorf("cluster: remote job on %s failed: %s", m.From, m.Err)
		}
		for _, w := range waiters {
			w.ch <- res
		}
	case proto.TypePing:
		n.mu.Lock()
		p := n.peers[m.From]
		n.mu.Unlock()
		if p != nil {
			_ = p.send(&proto.Message{Type: proto.TypePong, From: n.id})
		}
	case proto.TypePong:
		// Receipt alone is the signal; lastSeen already advanced.
	case proto.TypeReplicate:
		// A peer designated this node a replica holder for the object.
		// Ingest, then confirm — the ack is what lets the sender count
		// the copy as established.
		if n.ingestObject(m.From, m.Handle, m.Data) {
			n.mu.Lock()
			p := n.peers[m.From]
			n.mu.Unlock()
			if p != nil {
				_ = p.send(&proto.Message{Type: proto.TypeReplicateAck, From: n.id, Handle: m.Handle})
			}
		}
	case proto.TypeReplicateAck:
		n.mu.Lock()
		n.viewAddLocked(m.Handle, m.From)
		n.net.ReplicasAcked++
		n.mu.Unlock()
	}
}

func keyOf(h core.Handle) core.Handle {
	if h.IsData() {
		return h.AsObject()
	}
	return h
}

func (n *Node) viewAddLocked(h core.Handle, owner string) {
	n.view.Add(keyOf(h), owner)
}

func (n *Node) serveRequest(m *proto.Message) {
	data, err := n.st.ObjectBytes(m.Handle)
	if err == nil {
		n.touch(m.Handle)
	}
	n.mu.Lock()
	p := n.peers[m.From]
	n.mu.Unlock()
	if p == nil {
		return
	}
	if err != nil {
		_ = p.send(&proto.Message{Type: proto.TypeMissing, From: n.id, Handle: m.Handle})
		return
	}
	_ = p.send(&proto.Message{Type: proto.TypeObject, From: n.id, Handle: m.Handle, Data: data})
}

// ingestObject stores object bytes received from a peer and reports
// whether they were accepted (content matching the handle).
func (n *Node) ingestObject(from string, h core.Handle, data []byte) bool {
	if err := n.st.PutObject(h, data); err != nil {
		return false
	}
	n.touch(h)
	n.mu.Lock()
	n.viewAddLocked(h, from)
	n.mu.Unlock()
	n.completeFetch(h, data, nil)
	return true
}

// completeFetch finishes an outstanding fetch wait, if any. Success
// completions carry the object's bytes so waiters don't have to re-read
// the hot store — a concurrent demotion pass may already have evicted
// the copy the fetch just promoted.
func (n *Node) completeFetch(h core.Handle, data []byte, err error) {
	n.mu.Lock()
	w := n.fetchW[keyOf(h)]
	delete(n.fetchW, keyOf(h))
	n.mu.Unlock()
	if w != nil {
		w.data = data
		w.err = err
		close(w.done)
	}
}

// serveJob executes a delegated Encode forcing and replies with the
// result. New objects produced by the job are advertised cluster-wide so
// downstream placements see them.
func (n *Node) serveJob(m *proto.Message) {
	n.mu.Lock()
	n.pending[n.id]++
	n.mu.Unlock()
	defer n.pendingDec(n.id)
	for _, p := range m.Pushed {
		if err := n.st.PutObject(p.Handle, p.Data); err == nil {
			n.mu.Lock()
			n.viewAddLocked(p.Handle, m.From)
			n.mu.Unlock()
		}
	}
	// The received Encode itself must run here: re-delegating it could
	// ping-pong back to the sender, whose force future is already
	// waiting on us (a distributed deadlock). Its children may still be
	// outsourced.
	ctx := withReceived(withHops(context.Background(), int(m.Hops)), m.Handle)
	var t *obsv.Trace
	tracer := n.tracer()
	if tracer != nil && m.Trace != "" {
		t = tracer.StartWithID(m.Trace, "remote_job")
		ctx = obsv.WithTrace(ctx, t)
	}
	evalStart := time.Now()
	res, err := n.eng.Eval(ctx, m.Handle)
	evalDur := time.Since(evalStart)
	t.AddSpanAt("eval", n.id, evalStart, evalDur)
	reply := &proto.Message{
		Type: proto.TypeResult, From: n.id, Handle: m.Handle,
		Result: res, EvalNS: evalDur.Nanoseconds(),
	}
	if err != nil {
		t.SetOutcome("error")
		reply.Err = err.Error()
	} else {
		closure := n.closureOf(res)
		n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: closure})
		// Eval outputs are writes too: a result living only on the worker
		// that computed it would vanish with that worker.
		n.replicate(closure, false, m.Trace)
	}
	if t != nil {
		tracer.Finish(t)
	}
	n.mu.Lock()
	p := n.peers[m.From]
	n.mu.Unlock()
	if p != nil {
		_ = p.send(reply)
	}
}

// closureOf lists locally resident data handles reachable from h
// (including h itself and thunk definitions), capped for sanity.
func (n *Node) closureOf(h core.Handle) []core.Handle {
	const maxClosure = 16384
	seen := make(map[core.Handle]bool)
	var out []core.Handle
	var walk func(core.Handle)
	walk = func(h core.Handle) {
		if len(out) >= maxClosure {
			return
		}
		k := keyOf(h)
		if k.IsLiteral() || seen[k] {
			return
		}
		seen[k] = true
		if !n.st.Contains(k) {
			return
		}
		out = append(out, k)
		if k.Kind() == core.KindTree {
			children, err := n.st.Tree(k)
			if err == nil {
				for _, c := range children {
					walk(c)
				}
			}
		}
	}
	walk(h)
	return out
}

func fnvHash(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	return f.Sum64()
}

type hopsKeyType struct{}

func withHops(ctx context.Context, hops int) context.Context {
	return context.WithValue(ctx, hopsKeyType{}, hops)
}

func hopsOf(ctx context.Context) int {
	if v, ok := ctx.Value(hopsKeyType{}).(int); ok {
		return v
	}
	return 0
}

type receivedKeyType struct{}

func withReceived(ctx context.Context, enc core.Handle) context.Context {
	return context.WithValue(ctx, receivedKeyType{}, enc)
}

func receivedOf(ctx context.Context) (core.Handle, bool) {
	h, ok := ctx.Value(receivedKeyType{}).(core.Handle)
	return h, ok
}

// Connect joins two nodes with a simulated link and waits until both ends
// have exchanged Hellos.
func Connect(a, b *Node, cfg transport.LinkConfig) {
	ca, cb := transport.Pipe(cfg)
	a.AttachPeer(ca)
	b.AttachPeer(cb)
	waitPeer(a, b.id)
	waitPeer(b, a.id)
}

func waitPeer(n *Node, id string) {
	for i := 0; i < 100000; i++ {
		n.mu.Lock()
		_, ok := n.peers[id]
		n.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// FullMesh connects every pair of nodes with identical links.
func FullMesh(cfg transport.LinkConfig, nodes ...*Node) {
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			Connect(nodes[i], nodes[j], cfg)
		}
	}
}
