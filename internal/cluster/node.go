// Package cluster implements the distributed Fixpoint execution engine of
// section 4.2: nodes that exchange Fix objects and delegate jobs over
// transport links, each running an independent dataflow-aware scheduler.
//
// There is no centralized scheduler. Each node keeps a passive "view" of
// which objects exist on which peers: on connect, nodes exchange lists of
// locally resident objects; thereafter the view advances as objects and
// results move. Given an Encode to force, the local scheduler walks the
// job's definition closure, estimates the bytes that would have to move to
// each candidate node (including the hinted output size), and delegates to
// the cheapest — or runs locally when it already is the cheapest.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"time"

	"fixgo/internal/core"
	"fixgo/internal/proto"
	"fixgo/internal/runtime"
	"fixgo/internal/stats"
	"fixgo/internal/store"
	"fixgo/internal/transport"
)

// NodeOptions configures a cluster node.
type NodeOptions struct {
	// Cores, MemoryBytes, InternalIO, OversubscribeCores and Registry are
	// passed through to the node's runtime engine.
	Cores              int
	MemoryBytes        uint64
	InternalIO         bool
	OversubscribeCores int
	Registry           *runtime.Registry
	// NoLocality is the Fig. 8b ablation: placement ignores the view and
	// picks uniformly at random.
	NoLocality bool
	// ClientOnly marks a node that submits jobs and serves objects but
	// never executes placements (the experiment "client").
	ClientOnly bool
	// MaxHops bounds the delegation depth of a dataflow (default 256;
	// each level of a job tree may hop once, and a received Encode is
	// never re-delegated, so this is a runaway guard, not a tuning
	// knob).
	MaxHops int
	// PushLimit is the largest Blob shipped inside a Job message;
	// larger dependencies are fetched on demand (default 4096).
	PushLimit int
	// ExtraFetcher supplies objects found on no peer (e.g. an object
	// store).
	ExtraFetcher runtime.Fetcher
	// Seed makes NoLocality placement deterministic.
	Seed int64
	// MaxEvalDepth passes through to the engine.
	MaxEvalDepth int
}

func (o NodeOptions) withDefaults() NodeOptions {
	if o.MaxHops <= 0 {
		o.MaxHops = 256
	}
	if o.PushLimit <= 0 {
		o.PushLimit = 4096
	}
	return o
}

// Node is one Fixpoint instance in a distributed deployment.
type Node struct {
	id   string
	opts NodeOptions
	st   *store.Store
	eng  *runtime.Engine

	mu      sync.Mutex
	peers   map[string]*peer
	view    map[core.Handle]map[string]bool
	fetchW  map[core.Handle]*fetchWait
	jobW    map[core.Handle][]chan jobResult
	pending map[string]int // node id → jobs in flight there (scheduling load)
	rng     *rand.Rand
	closed  bool
}

type peer struct {
	id     string
	role   byte
	conn   transport.Conn
	sendMu sync.Mutex
}

func (p *peer) send(m *proto.Message) error {
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	return p.conn.Send(m.Encode())
}

type fetchWait struct {
	done chan struct{}
	miss chan string
	err  error
}

type jobResult struct {
	result core.Handle
	err    error
}

// NewNode creates a node with the given identifier.
func NewNode(id string, opts NodeOptions) *Node {
	opts = opts.withDefaults()
	n := &Node{
		id:      id,
		opts:    opts,
		st:      store.New(),
		peers:   make(map[string]*peer),
		view:    make(map[core.Handle]map[string]bool),
		fetchW:  make(map[core.Handle]*fetchWait),
		jobW:    make(map[core.Handle][]chan jobResult),
		pending: make(map[string]int),
		rng:     rand.New(rand.NewSource(opts.Seed ^ int64(fnvHash(id)))),
	}
	n.eng = runtime.New(n.st, runtime.Options{
		Cores:              opts.Cores,
		MemoryBytes:        opts.MemoryBytes,
		InternalIO:         opts.InternalIO,
		OversubscribeCores: opts.OversubscribeCores,
		Registry:           opts.Registry,
		Fetcher:            &clusterFetcher{n: n},
		Delegator:          n,
		MaxEvalDepth:       opts.MaxEvalDepth,
	})
	return n
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// Store returns the node's runtime storage.
func (n *Node) Store() *store.Store { return n.st }

// Engine returns the node's execution engine.
func (n *Node) Engine() *runtime.Engine { return n.eng }

// Stats returns the node's CPU-state collector.
func (n *Node) Stats() *stats.Collector { return n.eng.Stats() }

// Eval evaluates a Fix object, with the distributed scheduler free to
// place work anywhere in the cluster.
func (n *Node) Eval(ctx context.Context, h core.Handle) (core.Handle, error) {
	return n.eng.Eval(withHops(ctx, 0), h)
}

// EvalBlob evaluates h and fetches the resulting Blob's contents.
func (n *Node) EvalBlob(ctx context.Context, h core.Handle) ([]byte, error) {
	return n.eng.EvalBlob(withHops(ctx, 0), h)
}

// Close shuts down all peer links.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		p.conn.Close()
	}
}

// role returns the node's wire role.
func (n *Node) role() byte {
	if n.opts.ClientOnly {
		return proto.RoleClient
	}
	return proto.RoleWorker
}

// AttachPeer adopts a transport link: sends our Hello (identity, role, and
// the full list of resident objects) and starts the receive loop. The peer
// becomes routable once its own Hello arrives.
func (n *Node) AttachPeer(conn transport.Conn) {
	hello := &proto.Message{Type: proto.TypeHello, From: n.id, Role: n.role(), Adverts: n.localAdverts()}
	_ = conn.Send(hello.Encode())
	go n.recvLoop(conn)
}

func (n *Node) localAdverts() []core.Handle {
	var out []core.Handle
	n.st.ForEach(func(h core.Handle, size uint64) { out = append(out, h) })
	return out
}

// Peers lists connected peer IDs.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for id := range n.peers {
		out = append(out, id)
	}
	return out
}

// AdvertiseAll broadcasts the node's current object inventory to all
// peers. Call after bulk-loading data onto an already connected node.
func (n *Node) AdvertiseAll() {
	n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: n.localAdverts()})
}

func (n *Node) broadcast(m *proto.Message) {
	n.mu.Lock()
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		_ = p.send(m)
	}
}

func (n *Node) recvLoop(conn transport.Conn) {
	var from string
	for {
		raw, err := conn.Recv()
		if err != nil {
			if from != "" {
				n.mu.Lock()
				delete(n.peers, from)
				n.mu.Unlock()
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, transport.ErrClosed) {
				// Link failure: drop the peer silently; fetches fall
				// back to other owners.
				_ = err
			}
			return
		}
		m, err := proto.Decode(raw)
		if err != nil {
			continue // malformed frame: ignore
		}
		if from == "" {
			if m.Type != proto.TypeHello {
				continue // protocol requires Hello first
			}
			from = m.From
			p := &peer{id: from, role: m.Role, conn: conn}
			n.mu.Lock()
			n.peers[from] = p
			n.mu.Unlock()
		}
		n.handle(m)
	}
}

func (n *Node) handle(m *proto.Message) {
	switch m.Type {
	case proto.TypeHello, proto.TypeAdvertise:
		n.mu.Lock()
		for _, h := range m.Adverts {
			n.viewAddLocked(h, m.From)
		}
		n.mu.Unlock()
	case proto.TypeRequest:
		go n.serveRequest(m)
	case proto.TypeObject:
		n.ingestObject(m.From, m.Handle, m.Data)
	case proto.TypeMissing:
		n.mu.Lock()
		owners := n.view[keyOf(m.Handle)]
		if owners != nil {
			delete(owners, m.From)
		}
		w := n.fetchW[keyOf(m.Handle)]
		n.mu.Unlock()
		if w != nil {
			select {
			case w.miss <- m.From:
			default:
			}
		}
	case proto.TypeJob:
		go n.serveJob(m)
	case proto.TypeResult:
		n.mu.Lock()
		waiters := n.jobW[m.Handle]
		delete(n.jobW, m.Handle)
		n.mu.Unlock()
		res := jobResult{result: m.Result}
		if m.Err != "" {
			res.err = fmt.Errorf("cluster: remote job on %s failed: %s", m.From, m.Err)
		}
		for _, ch := range waiters {
			ch <- res
		}
	}
}

func keyOf(h core.Handle) core.Handle {
	if h.IsData() {
		return h.AsObject()
	}
	return h
}

func (n *Node) viewAddLocked(h core.Handle, owner string) {
	k := keyOf(h)
	set := n.view[k]
	if set == nil {
		set = make(map[string]bool)
		n.view[k] = set
	}
	set[owner] = true
}

func (n *Node) serveRequest(m *proto.Message) {
	data, err := n.st.ObjectBytes(m.Handle)
	n.mu.Lock()
	p := n.peers[m.From]
	n.mu.Unlock()
	if p == nil {
		return
	}
	if err != nil {
		_ = p.send(&proto.Message{Type: proto.TypeMissing, From: n.id, Handle: m.Handle})
		return
	}
	_ = p.send(&proto.Message{Type: proto.TypeObject, From: n.id, Handle: m.Handle, Data: data})
}

func (n *Node) ingestObject(from string, h core.Handle, data []byte) {
	if err := n.st.PutObject(h, data); err != nil {
		return
	}
	n.mu.Lock()
	n.viewAddLocked(h, from)
	n.mu.Unlock()
	n.completeFetch(h, nil)
}

// completeFetch finishes an outstanding fetch wait, if any.
func (n *Node) completeFetch(h core.Handle, err error) {
	n.mu.Lock()
	w := n.fetchW[keyOf(h)]
	delete(n.fetchW, keyOf(h))
	n.mu.Unlock()
	if w != nil {
		w.err = err
		close(w.done)
	}
}

// serveJob executes a delegated Encode forcing and replies with the
// result. New objects produced by the job are advertised cluster-wide so
// downstream placements see them.
func (n *Node) serveJob(m *proto.Message) {
	n.mu.Lock()
	n.pending[n.id]++
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.pending[n.id]--
		n.mu.Unlock()
	}()
	for _, p := range m.Pushed {
		if err := n.st.PutObject(p.Handle, p.Data); err == nil {
			n.mu.Lock()
			n.viewAddLocked(p.Handle, m.From)
			n.mu.Unlock()
		}
	}
	// The received Encode itself must run here: re-delegating it could
	// ping-pong back to the sender, whose force future is already
	// waiting on us (a distributed deadlock). Its children may still be
	// outsourced.
	ctx := withReceived(withHops(context.Background(), int(m.Hops)), m.Handle)
	res, err := n.eng.Eval(ctx, m.Handle)
	reply := &proto.Message{Type: proto.TypeResult, From: n.id, Handle: m.Handle, Result: res}
	if err != nil {
		reply.Err = err.Error()
	} else {
		n.broadcast(&proto.Message{Type: proto.TypeAdvertise, From: n.id, Adverts: n.closureOf(res)})
	}
	n.mu.Lock()
	p := n.peers[m.From]
	n.mu.Unlock()
	if p != nil {
		_ = p.send(reply)
	}
}

// closureOf lists locally resident data handles reachable from h
// (including h itself and thunk definitions), capped for sanity.
func (n *Node) closureOf(h core.Handle) []core.Handle {
	const maxClosure = 16384
	seen := make(map[core.Handle]bool)
	var out []core.Handle
	var walk func(core.Handle)
	walk = func(h core.Handle) {
		if len(out) >= maxClosure {
			return
		}
		k := keyOf(h)
		if k.IsLiteral() || seen[k] {
			return
		}
		seen[k] = true
		if !n.st.Contains(k) {
			return
		}
		out = append(out, k)
		if k.Kind() == core.KindTree {
			children, err := n.st.Tree(k)
			if err == nil {
				for _, c := range children {
					walk(c)
				}
			}
		}
	}
	walk(h)
	return out
}

func fnvHash(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	return f.Sum64()
}

type hopsKeyType struct{}

func withHops(ctx context.Context, hops int) context.Context {
	return context.WithValue(ctx, hopsKeyType{}, hops)
}

func hopsOf(ctx context.Context) int {
	if v, ok := ctx.Value(hopsKeyType{}).(int); ok {
		return v
	}
	return 0
}

type receivedKeyType struct{}

func withReceived(ctx context.Context, enc core.Handle) context.Context {
	return context.WithValue(ctx, receivedKeyType{}, enc)
}

func receivedOf(ctx context.Context) (core.Handle, bool) {
	h, ok := ctx.Value(receivedKeyType{}).(core.Handle)
	return h, ok
}

// Connect joins two nodes with a simulated link and waits until both ends
// have exchanged Hellos.
func Connect(a, b *Node, cfg transport.LinkConfig) {
	ca, cb := transport.Pipe(cfg)
	a.AttachPeer(ca)
	b.AttachPeer(cb)
	waitPeer(a, b.id)
	waitPeer(b, a.id)
}

func waitPeer(n *Node, id string) {
	for i := 0; i < 100000; i++ {
		n.mu.Lock()
		_, ok := n.peers[id]
		n.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// FullMesh connects every pair of nodes with identical links.
func FullMesh(cfg transport.LinkConfig, nodes ...*Node) {
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			Connect(nodes[i], nodes[j], cfg)
		}
	}
}
