package cluster

import (
	"context"
	"fmt"
	"sort"

	"fixgo/internal/core"
	"fixgo/internal/obsv"
	"fixgo/internal/proto"
)

// clusterFetcher implements runtime.Fetcher over the peer network. The
// owner walk is tiered: with replication on, the consistent-hash ring's
// owner list comes first (replicas are placed there deterministically,
// so any node can locate a copy it was never told about — including one
// re-placed by repair after the advertised holder died); then the peers
// the passive view locates the object on; then every remaining peer (the
// view advances passively and may lag); finally the node's ExtraFetcher
// (e.g. an object store).
type clusterFetcher struct {
	n *Node
}

func (f *clusterFetcher) Fetch(ctx context.Context, h core.Handle) ([]byte, error) {
	n := f.n
	k := keyOf(h)
	defer obsv.FromContext(ctx).StartSpan("object_fetch", "").End()

	// Single-flight: join an in-progress fetch if one exists. The wait
	// carries the fetched bytes: re-reading the hot store here would race
	// with a demotion pass evicting the freshly promoted copy.
	n.mu.Lock()
	if w, ok := n.fetchW[k]; ok {
		n.mu.Unlock()
		select {
		case <-w.done:
			if w.err != nil {
				return nil, w.err
			}
			if w.data != nil {
				return w.data, nil
			}
			return n.st.ObjectBytes(k)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	w := &fetchWait{done: make(chan struct{}), miss: make(chan string, 16)}
	n.fetchW[k] = w
	// Tier 1: the ring's owner list — the canonical replica placement,
	// consulted only with replication on (at R=1 nothing is ring-placed,
	// so asking the primary first would waste a round trip).
	var ringOwners []string
	if n.opts.Replicas > 1 {
		ringOwners = n.ring.Owners(k, n.opts.Replicas)
	}
	// Tier 2: the passive view's believed holders (already sorted).
	viewOwners := n.view.Owners(k)
	peerByID := make(map[string]*peer, len(n.peers))
	for id, p := range n.peers {
		peerByID[id] = p
	}
	n.mu.Unlock()
	// Tier 3: every remaining peer — the view advances passively and may
	// lag objects created after the Hello exchange (e.g. a client
	// uploading a job's inputs).
	rest := make([]string, 0, len(peerByID))
	for id := range peerByID {
		rest = append(rest, id)
	}
	sort.Strings(rest)
	owners := make([]string, 0, len(ringOwners)+len(viewOwners)+len(rest))
	tried := make(map[string]bool, cap(owners))
	for _, tier := range [][]string{ringOwners, viewOwners, rest} {
		for _, id := range tier {
			if id == n.id || tried[id] {
				continue
			}
			tried[id] = true
			owners = append(owners, id)
		}
	}

	data, err := f.run(ctx, k, w, owners, peerByID)
	if err != nil {
		n.completeFetch(k, nil, err)
		return nil, err
	}
	return data, nil
}

// run walks the owner tiers and returns the object's bytes. Every success
// path hands the bytes both to the store (promotion) and to the fetch
// wait, so neither this caller nor any joiner re-reads the store after
// completion.
func (f *clusterFetcher) run(ctx context.Context, k core.Handle, w *fetchWait, owners []string, peerByID map[string]*peer) ([]byte, error) {
	n := f.n
	var traceID string
	if t := obsv.FromContext(ctx); t != nil {
		traceID = t.ID
	}
	for _, owner := range owners {
		p := peerByID[owner]
		if p == nil {
			continue
		}
		if err := p.send(&proto.Message{Type: proto.TypeRequest, From: n.id, Handle: k, Trace: traceID}); err != nil {
			continue
		}
		for {
			select {
			case <-w.done:
				return w.data, w.err
			case from := <-w.miss:
				if from == owner {
					// This owner no longer has it; try the next.
				} else {
					continue // stale miss from an earlier owner
				}
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			break
		}
		// Check whether the object arrived through another path (e.g.
		// pushed alongside a job) while we were waiting.
		if data, err := n.st.ObjectBytes(k); err == nil {
			n.completeFetch(k, data, nil)
			return data, nil
		}
	}
	if n.opts.ExtraFetcher != nil {
		data, err := n.opts.ExtraFetcher.Fetch(ctx, k)
		if err == nil {
			if err := n.st.PutObject(k, data); err != nil {
				return nil, err
			}
			n.touch(k)
			n.completeFetch(k, data, nil)
			return data, nil
		}
	}
	// Final hop: the cold storage tier. A demoted object (or one whose
	// every hot holder died) is recovered from here and promoted back
	// into the hot store.
	if tier := n.opts.Tier; tier != nil {
		data, err := tier.Get(ctx, k)
		if err == nil {
			if err := n.st.PutObject(k, data); err != nil {
				return nil, err
			}
			n.tier.fetches.Add(1)
			n.touch(k)
			n.completeFetch(k, data, nil)
			return data, nil
		}
		n.tier.fetchMisses.Add(1)
	}
	return nil, fmt.Errorf("cluster: object %v not found on any of %d known owners", k, len(owners))
}
