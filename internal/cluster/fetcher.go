package cluster

import (
	"context"
	"fmt"
	"sort"

	"fixgo/internal/core"
	"fixgo/internal/proto"
)

// clusterFetcher implements runtime.Fetcher over the peer network: missing
// objects are requested from peers the view locates them on, falling back
// to the node's ExtraFetcher (e.g. an object store).
type clusterFetcher struct {
	n *Node
}

func (f *clusterFetcher) Fetch(ctx context.Context, h core.Handle) ([]byte, error) {
	n := f.n
	k := keyOf(h)

	// Single-flight: join an in-progress fetch if one exists.
	n.mu.Lock()
	if w, ok := n.fetchW[k]; ok {
		n.mu.Unlock()
		select {
		case <-w.done:
			if w.err != nil {
				return nil, w.err
			}
			return n.st.ObjectBytes(k)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	w := &fetchWait{done: make(chan struct{}), miss: make(chan string, 16)}
	n.fetchW[k] = w
	owners := make([]string, 0, len(n.view[k]))
	for id := range n.view[k] {
		owners = append(owners, id)
	}
	peerByID := make(map[string]*peer, len(n.peers))
	for id, p := range n.peers {
		peerByID[id] = p
	}
	n.mu.Unlock()
	sort.Strings(owners)
	// Fall back to peers the view knows nothing about: the view advances
	// passively and may lag objects created after the Hello exchange
	// (e.g. a client uploading a job's inputs).
	known := make(map[string]bool, len(owners))
	for _, id := range owners {
		known[id] = true
	}
	rest := make([]string, 0, len(peerByID))
	for id := range peerByID {
		if !known[id] {
			rest = append(rest, id)
		}
	}
	sort.Strings(rest)
	owners = append(owners, rest...)

	err := f.run(ctx, k, w, owners, peerByID)
	if err != nil {
		n.completeFetch(k, err)
		return nil, err
	}
	// Success paths (ingestObject or extra fetcher) completed the wait.
	return n.st.ObjectBytes(k)
}

func (f *clusterFetcher) run(ctx context.Context, k core.Handle, w *fetchWait, owners []string, peerByID map[string]*peer) error {
	n := f.n
	for _, owner := range owners {
		p := peerByID[owner]
		if p == nil {
			continue
		}
		if err := p.send(&proto.Message{Type: proto.TypeRequest, From: n.id, Handle: k}); err != nil {
			continue
		}
		for {
			select {
			case <-w.done:
				return w.err
			case from := <-w.miss:
				if from == owner {
					// This owner no longer has it; try the next.
				} else {
					continue // stale miss from an earlier owner
				}
			case <-ctx.Done():
				return ctx.Err()
			}
			break
		}
		// Check whether the object arrived through another path (e.g.
		// pushed alongside a job) while we were waiting.
		if n.st.Contains(k) {
			n.completeFetch(k, nil)
			return nil
		}
	}
	if n.opts.ExtraFetcher != nil {
		data, err := n.opts.ExtraFetcher.Fetch(ctx, k)
		if err != nil {
			return fmt.Errorf("cluster: %v not found on any peer: %w", k, err)
		}
		if err := n.st.PutObject(k, data); err != nil {
			return err
		}
		n.completeFetch(k, nil)
		return nil
	}
	return fmt.Errorf("cluster: object %v not found on any of %d known owners", k, len(owners))
}
