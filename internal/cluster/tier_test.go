package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fixgo/internal/core"
	"fixgo/internal/storage"
)

// testTier builds an LFC-fronted Dir tier in temp dirs.
func testTier(t *testing.T, budget int64) *storage.LFC {
	t.Helper()
	remote, err := storage.NewDir(t.TempDir(), storage.DirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lfc, err := storage.NewLFC(t.TempDir(), budget, remote)
	if err != nil {
		t.Fatal(err)
	}
	return lfc
}

// TestTierDemoteAndRefetch pins the demotion/promotion lifecycle on one
// node: a cold object is spilled to the tier and evicted from the hot
// store, then a later read recovers it through the fetcher's tier hop
// and promotes it back.
func TestTierDemoteAndRefetch(t *testing.T) {
	tier := testTier(t, 1<<20)
	n := NewNode("w0", NodeOptions{Cores: 1, Tier: tier, DemoteAfter: 10 * time.Millisecond, DemoteEvery: time.Hour})
	defer n.Close()

	data := bytes.Repeat([]byte{42}, 512)
	h := n.PutBlob(data)
	if !n.Store().Contains(h) {
		t.Fatal("object not resident after PutBlob")
	}

	// Too hot to demote: inside the idle window nothing moves.
	if got := n.DemotePass(context.Background()); got != 0 {
		t.Fatalf("hot object demoted: %d", got)
	}

	time.Sleep(20 * time.Millisecond)
	if got := n.DemotePass(context.Background()); got != 1 {
		t.Fatalf("DemotePass = %d, want 1", got)
	}
	if n.Store().Contains(h) {
		t.Fatal("hot copy survives demotion")
	}
	if ok, err := tier.Has(context.Background(), keyOf(h)); err != nil || !ok {
		t.Fatalf("tier does not hold demoted object: %v %v", ok, err)
	}

	// The read path recovers and promotes it.
	got, err := n.ObjectBytes(context.Background(), h)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ObjectBytes after demotion = %v", err)
	}
	if !n.Store().Contains(h) {
		t.Fatal("tier fetch did not promote the object back")
	}

	ss := n.StorageStats()
	if ss == nil {
		t.Fatal("StorageStats nil with a tier configured")
	}
	if ss.Demoted != 1 || ss.TierFetches != 1 || ss.DemotePasses != 2 {
		t.Fatalf("counters: %+v", ss)
	}
}

// TestTierPinnedObjectSurvivesDemotion: pins block eviction, so a pinned
// object stays hot even when cold by access time.
func TestTierPinnedObjectSurvivesDemotion(t *testing.T) {
	tier := testTier(t, 1<<20)
	n := NewNode("w0", NodeOptions{Cores: 1, Tier: tier, DemoteAfter: 5 * time.Millisecond, DemoteEvery: time.Hour})
	defer n.Close()
	h := n.PutBlob(bytes.Repeat([]byte{7}, 256))
	n.Store().Pin(h)
	time.Sleep(15 * time.Millisecond)
	n.DemotePass(context.Background())
	if !n.Store().Contains(h) {
		t.Fatal("pinned object was demoted")
	}
}

// TestTierDemoteRequiresReplicas: with replication on, an object this
// node cannot account R copies of is not demoted — repair must
// re-establish replicas before demotion thins the holders.
func TestTierDemoteRequiresReplicas(t *testing.T) {
	tier := testTier(t, 1<<20)
	// R=2 but no peers: every object is under-replicated.
	n := NewNode("w0", NodeOptions{Cores: 1, Replicas: 2, Tier: tier, DemoteAfter: 5 * time.Millisecond, DemoteEvery: time.Hour})
	defer n.Close()
	h := n.PutBlob(bytes.Repeat([]byte{9}, 256))
	time.Sleep(15 * time.Millisecond)
	if got := n.DemotePass(context.Background()); got != 0 {
		t.Fatalf("under-replicated object demoted: %d", got)
	}
	if !n.Store().Contains(h) {
		t.Fatal("under-replicated object left the hot store")
	}
}

// TestTierMissRecoversFromTier: an object present only in the tier (e.g.
// demoted by a node that then died) is recovered by the fetcher's final
// hop.
func TestTierMissRecoversFromTier(t *testing.T) {
	tier := testTier(t, 1<<20)
	data := bytes.Repeat([]byte{3}, 400)
	h := core.BlobHandle(data)
	if err := tier.Put(context.Background(), h.AsObject(), data); err != nil {
		t.Fatal(err)
	}
	n := NewNode("w0", NodeOptions{Cores: 1, Tier: tier})
	defer n.Close()
	got, err := n.ObjectBytes(context.Background(), h)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("tier-only object not recovered: %v", err)
	}
	if ss := n.StorageStats(); ss.TierFetches != 1 {
		t.Fatalf("TierFetches = %d, want 1", ss.TierFetches)
	}
}

// TestTierDemoteFetchRace is the demotion-vs-concurrent-fetch stress:
// readers hammer ObjectBytes while demotion passes continuously spill
// cold objects, under -race in the chaos job. Every read must succeed —
// an object caught mid-demotion is always recoverable from the tier.
func TestTierDemoteFetchRace(t *testing.T) {
	tier := testTier(t, 1<<20)
	n := NewNode("w0", NodeOptions{Cores: 1, Tier: tier, DemoteAfter: time.Millisecond, DemoteEvery: time.Hour})
	defer n.Close()

	const objects = 24
	handles := make([]core.Handle, objects)
	payloads := make([][]byte, objects)
	for i := range handles {
		payloads[i] = bytes.Repeat([]byte{byte(i), 0xA5}, 200+i)
		handles[i] = n.PutBlob(payloads[i])
	}
	time.Sleep(3 * time.Millisecond)

	stop := make(chan struct{})
	var demoters sync.WaitGroup
	demoters.Add(1)
	go func() {
		defer demoters.Done()
		for {
			select {
			case <-stop:
				return
			default:
				n.DemotePass(context.Background())
			}
		}
	}()

	var readers sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; i < 80; i++ {
				idx := (g*13 + i) % objects
				got, err := n.ObjectBytes(context.Background(), handles[idx])
				if err != nil {
					errs <- fmt.Errorf("reader %d object %d: %w", g, idx, err)
					return
				}
				if !bytes.Equal(got, payloads[idx]) {
					errs <- fmt.Errorf("reader %d object %d: corrupt read", g, idx)
					return
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	demoters.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
