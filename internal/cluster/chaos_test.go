package cluster

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"fixgo/internal/core"
	"fixgo/internal/runtime"
	"fixgo/internal/transport"
)

// TestChaosFetchRetriesNextOwner pins the fetcher's owner failover: when
// the first owner's link errors — at send time or after the request is
// already in flight — the fetch must continue with the next owner
// instead of failing.
func TestChaosFetchRetriesNextOwner(t *testing.T) {
	data := bytes.Repeat([]byte{9}, 512)

	t.Run("send error moves to next owner", func(t *testing.T) {
		client := NewNode("client", NodeOptions{Cores: 1, ClientOnly: true})
		w1 := NewNode("w1", NodeOptions{Cores: 1})
		w2 := NewNode("w2", NodeOptions{Cores: 1})
		defer client.Close()
		defer w1.Close()
		defer w2.Close()
		h := w1.Store().PutBlob(data)
		w2.Store().PutBlob(data)

		// client→w1: the Hello (send #1) passes, then the link
		// hard-closes on the next send — the Request errors out.
		pa, pb := transport.Pipe(fastLink())
		ca := transport.Chaos(pa, transport.ChaosConfig{CloseAfter: 1})
		client.AttachPeer(ca)
		w1.AttachPeer(pb)
		waitPeer(client, "w1")
		waitPeer(w1, "client")
		Connect(client, w2, fastLink())

		got, err := client.ObjectBytes(context.Background(), h)
		if err != nil {
			t.Fatalf("fetch with broken first owner: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("fetched bytes mismatch")
		}
	})

	t.Run("in-flight request survives owner death", func(t *testing.T) {
		client := NewNode("client", NodeOptions{Cores: 1, ClientOnly: true})
		// w1's heartbeats will notice the one-way partition (it hears
		// nothing from the client) and close the link; the client's
		// eviction of w1 then nudges the parked fetch onto w2.
		w1 := NewNode("w1", hbOpts(NodeOptions{Cores: 1}))
		w2 := NewNode("w2", NodeOptions{Cores: 1})
		defer client.Close()
		defer w1.Close()
		defer w2.Close()
		h := w1.Store().PutBlob(data)
		w2.Store().PutBlob(data)

		// client→w1 blackholes everything after the Hello: the Request
		// "succeeds" at the sender but never arrives.
		pa, pb := transport.Pipe(fastLink())
		ca := transport.Chaos(pa, transport.ChaosConfig{DropAfter: 1})
		client.AttachPeer(ca)
		w1.AttachPeer(pb)
		waitPeer(client, "w1")
		waitPeer(w1, "client")
		Connect(client, w2, fastLink())

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		got, err := client.ObjectBytes(ctx, h)
		if err != nil {
			t.Fatalf("fetch with blackholed first owner: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("fetched bytes mismatch")
		}
	})
}

// chaosEvent is one step of a fault schedule, applied before submitting
// the job with the matching index.
type chaosEvent struct {
	beforeJob int
	action    string // "kill" | "partition" | "reconnect"
	worker    int
}

// chaosMesh is the chaos test harness: a client-only node fronting a
// worker mesh, with the client side of every client↔worker link wrapped
// in a seeded Chaos conn so schedules are reproducible.
type chaosMesh struct {
	t       *testing.T
	client  *Node
	workers []*Node
	links   []*transport.ChaosConn // client-side conn per worker
}

func newChaosMesh(t *testing.T, seed int64, workers int) *chaosMesh {
	t.Helper()
	reg := runtime.NewRegistry()
	reg.RegisterFunc("mul2", func(api core.API, input core.Handle) (core.Handle, error) {
		entries, err := api.AttachTree(input)
		if err != nil {
			return core.Handle{}, err
		}
		b, err := api.AttachBlob(entries[2])
		if err != nil {
			return core.Handle{}, err
		}
		v, err := core.DecodeU64(b)
		if err != nil {
			return core.Handle{}, err
		}
		return api.CreateBlob(core.LiteralU64(v * 2).LiteralData()), nil
	})
	m := &chaosMesh{
		t:      t,
		client: NewNode("client", hbOpts(NodeOptions{Cores: 1, ClientOnly: true, Seed: seed})),
	}
	for i := 0; i < workers; i++ {
		w := NewNode(fmt.Sprintf("w%d", i), hbOpts(NodeOptions{Cores: 2, Registry: reg, Seed: seed + int64(i)}))
		m.workers = append(m.workers, w)
		m.links = append(m.links, m.connect(i, seed))
	}
	FullMesh(fastLink(), m.workers...)
	return m
}

// connect links the client to worker i through a fresh seeded chaos conn.
func (m *chaosMesh) connect(i int, seed int64) *transport.ChaosConn {
	pa, pb := transport.Pipe(fastLink())
	ca := transport.Chaos(pa, transport.ChaosConfig{
		Seed:         seed + int64(i),
		SpikeEvery:   7, // deterministic latency spikes for flavor
		SpikeLatency: 2 * time.Millisecond,
	})
	m.client.AttachPeer(ca)
	m.workers[i].AttachPeer(pb)
	waitPeer(m.client, m.workers[i].id)
	waitPeer(m.workers[i], m.client.id)
	return ca
}

func (m *chaosMesh) apply(ev chaosEvent, seed int64) {
	switch ev.action {
	case "kill":
		m.workers[ev.worker].Close()
	case "partition":
		m.links[ev.worker].Partition()
	case "reconnect":
		// Heal = a fresh link: the partitioned one was torn down by the
		// deaf side's heartbeat eviction.
		m.links[ev.worker] = m.connect(ev.worker, seed+100)
	}
}

func (m *chaosMesh) close() {
	m.client.Close()
	for _, w := range m.workers {
		w.Close()
	}
}

// run submits jobs sequentially, applying the fault schedule, and
// returns every result (failing the test on any lost eval).
func runChaosSchedule(t *testing.T, seed int64, jobs int, schedule []chaosEvent) []uint64 {
	t.Helper()
	m := newChaosMesh(t, seed, 3)
	defer m.close()
	out := make([]uint64, jobs)
	for i := 0; i < jobs; i++ {
		for _, ev := range schedule {
			if ev.beforeJob == i {
				m.apply(ev, seed)
			}
		}
		fn := m.client.Store().PutBlob(core.NativeFunctionBlob("mul2"))
		tree, err := m.client.Store().PutTree(core.InvocationTree(core.DefaultLimits.Handle(), fn, core.LiteralU64(uint64(i))))
		if err != nil {
			t.Fatal(err)
		}
		th, _ := core.Application(tree)
		enc, _ := core.Strict(th)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		data, err := m.client.EvalBlob(ctx, enc)
		cancel()
		if err != nil {
			t.Fatalf("job %d lost under chaos schedule: %v", i, err)
		}
		out[i], _ = core.DecodeU64(data)
	}
	return out
}

// TestChaosScheduleDeterministic drives a kill/partition/heal schedule
// against a client + 3-worker mesh under a fixed seed, twice: every
// submitted job must complete both times (zero lost evals) with
// identical results.
func TestChaosScheduleDeterministic(t *testing.T) {
	const jobs = 12
	schedule := []chaosEvent{
		{beforeJob: 3, action: "partition", worker: 1}, // silent one-way loss
		{beforeJob: 6, action: "kill", worker: 0},      // hard node death
		{beforeJob: 9, action: "reconnect", worker: 1}, // heal the partition
	}
	first := runChaosSchedule(t, 42, jobs, schedule)
	second := runChaosSchedule(t, 42, jobs, schedule)
	for i := range first {
		if want := uint64(i) * 2; first[i] != want {
			t.Fatalf("job %d = %d, want %d", i, first[i], want)
		}
		if first[i] != second[i] {
			t.Fatalf("runs diverge at job %d: %d vs %d", i, first[i], second[i])
		}
	}
}
