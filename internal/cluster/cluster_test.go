package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fixgo/internal/codelet"
	"fixgo/internal/core"
	"fixgo/internal/objstore"
	"fixgo/internal/runtime"
	"fixgo/internal/transport"
)

func fastLink() transport.LinkConfig {
	return transport.LinkConfig{Latency: 200 * time.Microsecond}
}

// countRegistry registers a "len" procedure returning its blob argument's
// length and a "sum" procedure adding two integer blobs.
func countRegistry() *runtime.Registry {
	reg := runtime.NewRegistry()
	reg.RegisterFunc("len", func(api core.API, input core.Handle) (core.Handle, error) {
		entries, err := api.AttachTree(input)
		if err != nil {
			return core.Handle{}, err
		}
		b, err := api.AttachBlob(entries[2])
		if err != nil {
			return core.Handle{}, err
		}
		return api.CreateBlob(core.LiteralU64(uint64(len(b))).LiteralData()), nil
	})
	reg.RegisterFunc("sum", func(api core.API, input core.Handle) (core.Handle, error) {
		entries, err := api.AttachTree(input)
		if err != nil {
			return core.Handle{}, err
		}
		var total uint64
		for _, arg := range entries[2:] {
			b, err := api.AttachBlob(arg)
			if err != nil {
				return core.Handle{}, err
			}
			v, err := core.DecodeU64(b)
			if err != nil {
				return core.Handle{}, err
			}
			total += v
		}
		return api.CreateBlob(core.LiteralU64(total).LiteralData()), nil
	})
	return reg
}

// lenJob builds strict(application([lim, len, blobHandle])) on node n.
func lenJob(t *testing.T, n *Node, blob core.Handle) core.Handle {
	t.Helper()
	fn := n.Store().PutBlob(core.NativeFunctionBlob("len"))
	tree, err := n.Store().PutTree(core.InvocationTree(core.DefaultLimits.Handle(), fn, blob))
	if err != nil {
		t.Fatal(err)
	}
	th, _ := core.Application(tree)
	enc, _ := core.Strict(th)
	return enc
}

func TestTwoNodeFetch(t *testing.T) {
	a := NewNode("a", NodeOptions{Cores: 2, Registry: countRegistry()})
	b := NewNode("b", NodeOptions{Cores: 2, Registry: countRegistry()})
	defer a.Close()
	defer b.Close()

	data := bytes.Repeat([]byte{7}, 1000)
	blob := b.Store().PutBlob(data)
	Connect(a, b, fastLink())

	// a evaluates a job depending on b's blob. Either the job moves to b
	// (locality) or the data moves to a; the answer must come out.
	enc := lenJob(t, a, blob)
	got, err := a.EvalBlob(context.Background(), enc)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := core.DecodeU64(got); v != 1000 {
		t.Fatalf("len = %d, want 1000", v)
	}
}

func TestLocalityPlacement(t *testing.T) {
	a := NewNode("a", NodeOptions{Cores: 2, Registry: countRegistry()})
	b := NewNode("b", NodeOptions{Cores: 2, Registry: countRegistry()})
	defer a.Close()
	defer b.Close()

	// Big blob lives on b; the job should be delegated to b, not pull
	// the blob to a.
	data := bytes.Repeat([]byte{1}, 1<<20)
	blob := b.Store().PutBlob(data)
	Connect(a, b, fastLink())

	enc := lenJob(t, a, blob)
	got, err := a.EvalBlob(context.Background(), enc)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := core.DecodeU64(got); v != 1<<20 {
		t.Fatalf("len = %d", v)
	}
	if n := b.Stats().Usage(time.Second).Tasks; n != 1 {
		t.Fatalf("b ran %d tasks, want 1 (locality placement)", n)
	}
	if n := a.Stats().Usage(time.Second).Tasks; n != 0 {
		t.Fatalf("a ran %d tasks, want 0", n)
	}
	// The big blob must not have moved to a.
	if a.Store().Contains(blob) {
		t.Fatal("blob was transferred despite locality placement")
	}
}

func TestClientOnlyNeverExecutes(t *testing.T) {
	client := NewNode("client", NodeOptions{Cores: 2, ClientOnly: true, Registry: countRegistry()})
	worker := NewNode("worker", NodeOptions{Cores: 2, Registry: countRegistry()})
	defer client.Close()
	defer worker.Close()
	Connect(client, worker, fastLink())

	// Data lives on the client; the job still must run on the worker.
	data := bytes.Repeat([]byte{9}, 128)
	blob := client.Store().PutBlob(data)
	client.AdvertiseAll()
	enc := lenJob(t, client, blob)
	got, err := client.EvalBlob(context.Background(), enc)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := core.DecodeU64(got); v != 128 {
		t.Fatalf("len = %d", v)
	}
	if n := client.Stats().Usage(time.Second).Tasks; n != 0 {
		t.Fatalf("client executed %d tasks, want 0", n)
	}
	if n := worker.Stats().Usage(time.Second).Tasks; n != 1 {
		t.Fatalf("worker executed %d tasks, want 1", n)
	}
}

func TestChainAcrossClientServer(t *testing.T) {
	client := NewNode("client", NodeOptions{Cores: 1, ClientOnly: true})
	server := NewNode("server", NodeOptions{Cores: 4})
	defer client.Close()
	defer server.Close()
	Connect(client, server, transport.LinkConfig{Latency: time.Millisecond})

	// Build a 100-deep inc chain on the client; one Eval ships it all.
	st := client.Store()
	inc := st.PutBlob(codelet.IncFunctionBlob())
	lim := core.DefaultLimits.Handle()
	arg := core.LiteralU64(0)
	for i := 0; i < 100; i++ {
		tree, err := st.PutTree([]core.Handle{lim, inc, arg})
		if err != nil {
			t.Fatal(err)
		}
		th, _ := core.Application(tree)
		enc, _ := core.Strict(th)
		arg = enc
	}
	got, err := client.EvalBlob(context.Background(), arg)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := core.DecodeU64(got); v != 100 {
		t.Fatalf("chain = %d, want 100", v)
	}
	if n := client.Stats().Usage(time.Second).Tasks; n != 0 {
		t.Fatalf("client executed %d tasks, want 0", n)
	}
	if n := server.Stats().Usage(time.Second).Tasks; n != 100 {
		t.Fatalf("server executed %d tasks, want 100", n)
	}
}

func TestMapReduceAcrossMesh(t *testing.T) {
	reg := countRegistry()
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = NewNode(fmt.Sprintf("n%d", i), NodeOptions{Cores: 4, Registry: reg, Seed: int64(i)})
		defer nodes[i].Close()
	}

	// Scatter 8 chunks round-robin before connecting (Hello advertises).
	chunks := make([]core.Handle, 8)
	total := 0
	for i := range chunks {
		data := bytes.Repeat([]byte{byte(i)}, 100*(i+1))
		total += len(data)
		chunks[i] = nodes[i%len(nodes)].Store().PutBlob(data)
	}
	FullMesh(fastLink(), nodes...)

	// Build len jobs per chunk and a sum reduction on node 0.
	st := nodes[0].Store()
	lenFn := st.PutBlob(core.NativeFunctionBlob("len"))
	sumFn := st.PutBlob(core.NativeFunctionBlob("sum"))
	lim := core.DefaultLimits.Handle()
	var encs []core.Handle
	for _, c := range chunks {
		tree, err := st.PutTree(core.InvocationTree(lim, lenFn, c))
		if err != nil {
			t.Fatal(err)
		}
		th, _ := core.Application(tree)
		enc, _ := core.Strict(th)
		encs = append(encs, enc)
	}
	// Binary reduction.
	for len(encs) > 1 {
		var next []core.Handle
		for i := 0; i+1 < len(encs); i += 2 {
			tree, err := st.PutTree(core.InvocationTree(lim, sumFn, encs[i], encs[i+1]))
			if err != nil {
				t.Fatal(err)
			}
			th, _ := core.Application(tree)
			enc, _ := core.Strict(th)
			next = append(next, enc)
		}
		if len(encs)%2 == 1 {
			next = append(next, encs[len(encs)-1])
		}
		encs = next
	}
	got, err := nodes[0].EvalBlob(context.Background(), encs[0])
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := core.DecodeU64(got); v != uint64(total) {
		t.Fatalf("sum = %d, want %d", v, total)
	}
	// Work should have spread: at least two nodes executed tasks.
	busy := 0
	for _, n := range nodes {
		if n.Stats().Usage(time.Second).Tasks > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d nodes executed tasks; expected distribution", busy)
	}
}

func TestNoLocalityStillCorrect(t *testing.T) {
	a := NewNode("a", NodeOptions{Cores: 2, Registry: countRegistry(), NoLocality: true, Seed: 1})
	b := NewNode("b", NodeOptions{Cores: 2, Registry: countRegistry(), NoLocality: true, Seed: 2})
	defer a.Close()
	defer b.Close()
	blob := b.Store().PutBlob(bytes.Repeat([]byte{3}, 512))
	Connect(a, b, fastLink())
	enc := lenJob(t, a, blob)
	got, err := a.EvalBlob(context.Background(), enc)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := core.DecodeU64(got); v != 512 {
		t.Fatalf("len = %d", v)
	}
}

func TestExtraFetcherFallback(t *testing.T) {
	// Object lives only in the object store; no peer has it.
	os := objstore.New(objstore.Config{})
	data := bytes.Repeat([]byte{4}, 777)
	h := core.BlobHandle(data)
	if err := os.PutHandle(context.Background(), h, data); err != nil {
		t.Fatal(err)
	}
	a := NewNode("a", NodeOptions{Cores: 2, Registry: countRegistry(), ExtraFetcher: os})
	b := NewNode("b", NodeOptions{Cores: 2, Registry: countRegistry(), ExtraFetcher: os})
	defer a.Close()
	defer b.Close()
	Connect(a, b, fastLink())
	enc := lenJob(t, a, h)
	got, err := a.EvalBlob(context.Background(), enc)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := core.DecodeU64(got); v != 777 {
		t.Fatalf("len = %d", v)
	}
}

func TestFetchUnknownObjectFails(t *testing.T) {
	a := NewNode("a", NodeOptions{Cores: 2, Registry: countRegistry()})
	b := NewNode("b", NodeOptions{Cores: 2, Registry: countRegistry()})
	defer a.Close()
	defer b.Close()
	Connect(a, b, fastLink())
	ghost := core.BlobHandle(bytes.Repeat([]byte{6}, 99))
	enc := lenJob(t, a, ghost)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := a.EvalBlob(ctx, enc); err == nil {
		t.Fatal("expected failure for unknown object")
	}
}

func TestRemoteJobErrorPropagates(t *testing.T) {
	reg := runtime.NewRegistry()
	reg.RegisterFunc("fail", func(api core.API, input core.Handle) (core.Handle, error) {
		return core.Handle{}, fmt.Errorf("deliberate failure")
	})
	client := NewNode("client", NodeOptions{Cores: 1, ClientOnly: true, Registry: reg})
	worker := NewNode("worker", NodeOptions{Cores: 1, Registry: reg})
	defer client.Close()
	defer worker.Close()
	Connect(client, worker, fastLink())
	fn := client.Store().PutBlob(core.NativeFunctionBlob("fail"))
	tree, _ := client.Store().PutTree(core.InvocationTree(core.DefaultLimits.Handle(), fn))
	th, _ := core.Application(tree)
	enc, _ := core.Strict(th)
	_, err := client.Eval(context.Background(), enc)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("deliberate failure")) {
		t.Fatalf("want remote error, got %v", err)
	}
}

func TestConcurrentClusterEvals(t *testing.T) {
	a := NewNode("a", NodeOptions{Cores: 4, Registry: countRegistry()})
	b := NewNode("b", NodeOptions{Cores: 4, Registry: countRegistry()})
	defer a.Close()
	defer b.Close()
	blobs := make([]core.Handle, 16)
	for i := range blobs {
		data := bytes.Repeat([]byte{byte(i)}, 50+i)
		if i%2 == 0 {
			blobs[i] = a.Store().PutBlob(data)
		} else {
			blobs[i] = b.Store().PutBlob(data)
		}
	}
	Connect(a, b, fastLink())
	var wg sync.WaitGroup
	errs := make([]error, len(blobs))
	for i, blob := range blobs {
		wg.Add(1)
		go func(i int, blob core.Handle) {
			defer wg.Done()
			enc := lenJob(t, a, blob)
			got, err := a.EvalBlob(context.Background(), enc)
			if err != nil {
				errs[i] = err
				return
			}
			if v, _ := core.DecodeU64(got); v != uint64(50+i) {
				errs[i] = fmt.Errorf("len = %d, want %d", v, 50+i)
			}
		}(i, blob)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("eval %d: %v", i, err)
		}
	}
}
