package cluster

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fixgo/internal/core"
	"fixgo/internal/proto"
	"fixgo/internal/transport"
)

// countingFetcher is an ExtraFetcher that counts calls and serves one blob
// after a delay long enough for every concurrent Fetch to pile up on the
// in-flight wait.
type countingFetcher struct {
	calls atomic.Int64
	h     core.Handle
	data  []byte
	delay time.Duration
}

func (f *countingFetcher) Fetch(ctx context.Context, h core.Handle) ([]byte, error) {
	f.calls.Add(1)
	time.Sleep(f.delay)
	if h.SameContent(f.h) {
		return f.data, nil
	}
	return nil, &fetchMissErr{}
}

type fetchMissErr struct{}

func (*fetchMissErr) Error() string { return "counting fetcher: no such object" }

// TestFetchSingleFlight drives N concurrent clusterFetcher.Fetch calls for
// one handle against a scripted peer that always answers Missing. Exactly
// one peer request and one ExtraFetcher fallback may occur: the other N−1
// callers must join the in-flight wait (fetchW in fetcher.go).
func TestFetchSingleFlight(t *testing.T) {
	data := bytes.Repeat([]byte{0xA5}, 1024)
	h := core.BlobHandle(data)

	extra := &countingFetcher{h: h, data: data, delay: 50 * time.Millisecond}
	n := NewNode("n", NodeOptions{Cores: 1, ExtraFetcher: extra})
	defer n.Close()

	// A scripted peer: replies to the Hello, advertises ownership of h so
	// the fetcher asks it first, then answers every Request with Missing,
	// counting the requests it sees.
	ours, theirs := transport.Pipe(transport.LinkConfig{})
	n.AttachPeer(ours)
	var peerRequests atomic.Int64
	go func() {
		hello := &proto.Message{Type: proto.TypeHello, From: "scripted", Role: proto.RoleWorker, Adverts: []core.Handle{h}}
		_ = theirs.Send(hello.Encode())
		for {
			raw, err := theirs.Recv()
			if err != nil {
				return
			}
			m, err := proto.Decode(raw)
			if err != nil || m.Type != proto.TypeRequest {
				continue
			}
			peerRequests.Add(1)
			reply := &proto.Message{Type: proto.TypeMissing, From: "scripted", Handle: m.Handle}
			_ = theirs.Send(reply.Encode())
		}
	}()
	waitPeer(n, "scripted")

	const N = 32
	f := &clusterFetcher{n: n}
	var wg sync.WaitGroup
	errs := make([]error, N)
	outs := make([][]byte, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = f.Fetch(context.Background(), h)
		}(i)
	}
	wg.Wait()

	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("fetch %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], data) {
			t.Fatalf("fetch %d: wrong bytes (%d, want %d)", i, len(outs[i]), len(data))
		}
	}
	if got := peerRequests.Load(); got != 1 {
		t.Errorf("peer requests = %d, want exactly 1 (single-flight)", got)
	}
	if got := extra.calls.Load(); got != 1 {
		t.Errorf("extra fetcher calls = %d, want exactly 1 (single-flight)", got)
	}
	if !n.Store().Contains(h) {
		t.Error("fetched object not resident after fetch")
	}
}
