package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"fixgo/internal/core"
	"fixgo/internal/storage"
)

// This file wires the tiered-storage spill path into the node. With
// NodeOptions.Tier set, the node gains a cold tier under its hot
// in-memory store: an anti-entropy demotion pass uploads cold objects to
// the tier and evicts the hot copy once the tier's remote side confirms
// it, and the fetcher's miss path (fetcher.go) ends with a tier lookup so
// a demoted object — or one whose every hot holder died — is always
// recoverable. A tier fetch re-inserts the object into the hot store and
// refreshes its access time: that is the promotion half of the lifecycle.

// tierState is the node's demotion bookkeeping: last-access times for
// resident objects and the spill counters merged into StorageStats.
type tierState struct {
	mu        sync.Mutex
	lastTouch map[core.Handle]time.Time

	demoted      atomic.Uint64
	demotePasses atomic.Uint64
	fetches      atomic.Uint64
	fetchMisses  atomic.Uint64
}

// touch records an access to h so the demotion pass sees it as hot. It is
// called on every write, ingest, serve, and fetch of an object; objects
// the node produced internally (eval outputs) are first-sight-stamped by
// the next demotion pass instead, which gives them a full DemoteAfter
// window too.
func (n *Node) touch(h core.Handle) {
	if n.opts.Tier == nil {
		return
	}
	k := keyOf(h)
	if k.IsLiteral() {
		return
	}
	n.tier.mu.Lock()
	n.tier.lastTouch[k] = time.Now()
	n.tier.mu.Unlock()
}

// SetTier attaches a spill tier after construction. The boot paths need
// this ordering: in hybrid mode the tier's local side is the durable
// store, which attaches to the node's runtime store only after NewNode
// returns. It must be called before the node starts serving peers or
// jobs — tier reads are unsynchronized against it. When demoteAfter is
// positive the demotion loop starts here, sweeping every demoteAfter/2
// (NodeOptions.DemoteEvery is unset on this path).
func (n *Node) SetTier(tier storage.Storage, demoteAfter time.Duration) {
	if tier == nil {
		return
	}
	n.opts.Tier = tier
	n.opts.DemoteAfter = demoteAfter
	if demoteAfter > 0 {
		if n.opts.DemoteEvery <= 0 {
			n.opts.DemoteEvery = demoteAfter / 2
		}
		go n.demoteLoop()
	}
}

// demoteLoop runs demotion passes every DemoteEvery until Close.
func (n *Node) demoteLoop() {
	t := time.NewTicker(n.opts.DemoteEvery)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
			n.DemotePass(context.Background())
		}
	}
}

// DemotePass runs one anti-entropy demotion sweep: every resident object
// not accessed within DemoteAfter is uploaded to the tier, buffered tier
// writes are flushed, and the hot copy is evicted only after the tier's
// remote side confirms it holds the object. With replication on, objects
// this node cannot account R copies of are skipped — the repair pass gets
// to re-establish replicas before demotion thins holders. Pinned objects
// survive (store.Evict refuses them). It returns the number of hot copies
// evicted. The loop calls it on a ticker; tests and operators may call it
// directly.
func (n *Node) DemotePass(ctx context.Context) int {
	tier := n.opts.Tier
	if tier == nil || n.isClosed() {
		return 0
	}
	now := time.Now()
	cutoff := now.Add(-n.opts.DemoteAfter)
	resident := make(map[core.Handle]struct{})
	var all []core.Handle
	n.st.ForEach(func(h core.Handle, size uint64) {
		resident[h] = struct{}{}
		all = append(all, h)
	})

	var cold []core.Handle
	n.tier.mu.Lock()
	// Prune bookkeeping for objects that left the store by other means.
	for h := range n.tier.lastTouch {
		if _, ok := resident[h]; !ok {
			delete(n.tier.lastTouch, h)
		}
	}
	for _, h := range all {
		t, ok := n.tier.lastTouch[h]
		if !ok {
			// First sight: stamp it and give it a full window.
			n.tier.lastTouch[h] = now
			continue
		}
		if t.Before(cutoff) {
			cold = append(cold, h)
		}
	}
	n.tier.mu.Unlock()

	// Upload every cold object first, then flush once, then confirm and
	// evict — one queue drain covers the whole batch.
	uploaded := cold[:0]
	for _, k := range cold {
		if ctx.Err() != nil {
			break
		}
		if n.opts.Replicas > 1 && n.ReplicaCount(k) < n.opts.Replicas {
			continue
		}
		data, err := n.st.ObjectBytes(k)
		if err != nil {
			continue
		}
		if err := tier.Put(ctx, k, data); err != nil {
			continue
		}
		uploaded = append(uploaded, k)
	}
	if f, ok := tier.(storage.Flusher); ok && len(uploaded) > 0 {
		if err := f.Flush(ctx); err != nil {
			n.tier.demotePasses.Add(1)
			return 0
		}
	}
	demoted := 0
	for _, k := range uploaded {
		ok, err := tierRemoteHas(ctx, tier, k)
		if err != nil || !ok {
			continue
		}
		if n.st.Evict(k) {
			demoted++
			n.tier.mu.Lock()
			delete(n.tier.lastTouch, k)
			n.tier.mu.Unlock()
		}
	}
	n.tier.demoted.Add(uint64(demoted))
	n.tier.demotePasses.Add(1)
	return demoted
}

// tierRemoteHas confirms the durable (remote) side of the tier holds k:
// composite tiers answer through RemoteConfirmer, simple tiers through
// Has.
func tierRemoteHas(ctx context.Context, tier storage.Storage, k core.Handle) (bool, error) {
	if rc, ok := tier.(storage.RemoteConfirmer); ok {
		return rc.RemoteHas(ctx, k)
	}
	return tier.Has(ctx, k)
}

// StorageStats snapshots the node's tier counters merged with the tier's
// own (LFC, remote, upload queue), or nil when the node has no tier.
// The gateway surfaces it at /v1/stats and as the fixgate_storage_*
// families; NewNodeMetrics emits the fixpoint_storage_* twins.
func (n *Node) StorageStats() *storage.Stats {
	tier := n.opts.Tier
	if tier == nil {
		return nil
	}
	var out storage.Stats
	if p, ok := tier.(storage.StatsProvider); ok {
		out = p.StorageStats()
	}
	out.Demoted += n.tier.demoted.Load()
	out.DemotePasses += n.tier.demotePasses.Load()
	out.TierFetches += n.tier.fetches.Load()
	out.TierFetchMisses += n.tier.fetchMisses.Load()
	return &out
}
