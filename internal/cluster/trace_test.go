package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"

	"fixgo/internal/core"
	"fixgo/internal/obsv"
)

// TestDelegationTracePropagation delegates a job from a client-only node
// and checks both ends of the trace: the client's trace collects
// placement, delegate, and remote_eval spans (the last from the Result
// header's EvalNS), and the worker's own tracer records the job under
// the same trace ID.
func TestDelegationTracePropagation(t *testing.T) {
	workerTracer := obsv.NewTracer(16, nil)
	client := NewNode("client", NodeOptions{Cores: 2, ClientOnly: true, Registry: countRegistry()})
	worker := NewNode("worker", NodeOptions{Cores: 2, Registry: countRegistry(), Tracer: workerTracer})
	defer client.Close()
	defer worker.Close()
	Connect(client, worker, fastLink())

	blob := client.Store().PutBlob(bytes.Repeat([]byte{9}, 128))
	client.AdvertiseAll()
	enc := lenJob(t, client, blob)

	clientTracer := obsv.NewTracer(16, nil)
	tc := clientTracer.Start("sync")
	ctx := obsv.WithTrace(context.Background(), tc)
	got, err := client.EvalBlob(ctx, enc)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := core.DecodeU64(got); v != 128 {
		t.Fatalf("len = %d", v)
	}
	clientTracer.Finish(tc)

	v, ok := clientTracer.Get(tc.ID)
	if !ok {
		t.Fatal("client trace not retained")
	}
	spans := map[string]obsv.SpanView{}
	for _, sp := range v.Spans {
		spans[sp.Name] = sp
	}
	for _, want := range []string{"placement", "delegate", "remote_eval"} {
		sp, ok := spans[want]
		if !ok {
			t.Fatalf("trace missing %q span; have %+v", want, v.Spans)
		}
		if sp.DurNS <= 0 {
			t.Fatalf("span %q has non-positive duration %d", want, sp.DurNS)
		}
	}
	if spans["delegate"].Node != "worker" || spans["remote_eval"].Node != "worker" {
		t.Fatalf("delegation spans not attributed to the worker: %+v", v.Spans)
	}
	if spans["remote_eval"].DurNS > spans["delegate"].DurNS {
		t.Fatal("remote eval cannot exceed the delegate round trip")
	}

	// The worker recorded the delegated job under the propagated ID.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if wv, ok := workerTracer.Get(tc.ID); ok {
			if len(wv.Spans) == 0 || wv.Spans[0].Name != "eval" {
				t.Fatalf("worker trace malformed: %+v", wv)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never recorded the propagated trace")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDelegationWithoutTraceIsZeroCost checks the nil path: no trace in
// the context means no Trace header on the wire and no spans anywhere.
func TestDelegationWithoutTraceIsZeroCost(t *testing.T) {
	workerTracer := obsv.NewTracer(16, nil)
	client := NewNode("c2", NodeOptions{Cores: 2, ClientOnly: true, Registry: countRegistry()})
	worker := NewNode("w2", NodeOptions{Cores: 2, Registry: countRegistry(), Tracer: workerTracer})
	defer client.Close()
	defer worker.Close()
	Connect(client, worker, fastLink())

	blob := client.Store().PutBlob(bytes.Repeat([]byte{3}, 64))
	client.AdvertiseAll()
	enc := lenJob(t, client, blob)
	if _, err := client.EvalBlob(context.Background(), enc); err != nil {
		t.Fatal(err)
	}
	if d := workerTracer.Slowest(10); d.Retained != 0 {
		t.Fatalf("worker recorded %d traces for an untraced job", d.Retained)
	}
}
