package bptree

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"fixgo/internal/baselines/raysim"
)

// Ray representation (section 5.4): each node is a pair of objects — the
// key array, and a children list of ObjectRef IDs. An internal node's
// children entries are (keysRefID, childrenRefID) pairs for the subnodes;
// a leaf's entries are value ObjectRef IDs.

// RayRoot names the root node's two objects.
type RayRoot struct {
	Keys     raysim.Ref
	Children raysim.Ref
	Depth    int
}

func encodeRefIDs(ids []uint64) []byte {
	out := make([]byte, 0, len(ids)*8)
	for _, id := range ids {
		out = binary.LittleEndian.AppendUint64(out, id)
	}
	return out
}

func decodeRefIDs(data []byte) []uint64 {
	out := make([]uint64, len(data)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return out
}

// BuildRay mirrors Build into a raysim cluster's object store on node.
func BuildRay(c *raysim.Cluster, node, arity int, keys []string, values [][]byte) (RayRoot, error) {
	if arity < 2 || len(keys) != len(values) || len(keys) == 0 || !sort.StringsAreSorted(keys) {
		return RayRoot{}, fmt.Errorf("bptree: invalid ray build inputs")
	}
	type rnode struct {
		keys, children raysim.Ref
		min            string
	}
	var level []rnode
	for i := 0; i < len(keys); i += arity {
		end := min(i+arity, len(keys))
		keysRef := c.Put(node, EncodeKeys(true, keys[i:end]))
		ids := make([]uint64, 0, end-i)
		for _, v := range values[i:end] {
			ids = append(ids, c.Put(node, v).ID)
		}
		level = append(level, rnode{keys: keysRef, children: c.Put(node, encodeRefIDs(ids)), min: keys[i]})
	}
	depth := 1
	for len(level) > 1 {
		var next []rnode
		for i := 0; i < len(level); i += arity {
			end := min(i+arity, len(level))
			group := level[i:end]
			mins := make([]string, len(group))
			ids := make([]uint64, 0, 2*len(group))
			for j, ch := range group {
				mins[j] = ch.min
				ids = append(ids, ch.keys.ID, ch.children.ID)
			}
			next = append(next, rnode{
				keys:     c.Put(node, EncodeKeys(false, mins)),
				children: c.Put(node, encodeRefIDs(ids)),
				min:      group[0].min,
			})
		}
		level = next
		depth++
	}
	return RayRoot{Keys: level[0].keys, Children: level[0].children, Depth: depth}, nil
}

// RegisterRay installs the two traversal styles of Listings 2 and 3.
func RegisterRay(c *raysim.Cluster) {
	// Blocking style: one task per query; each level performs two
	// blocking gets (keys, children list) while holding its worker slot.
	c.Register("bptree/get_blocking", func(tc *raysim.TaskCtx, args []raysim.Arg) ([]byte, error) {
		ctx := context.Background()
		key := string(args[0].Data)
		keysRef, childrenRef := args[1].Ref, args[2].Ref
		for {
			kb, err := tc.Get(ctx, keysRef)
			if err != nil {
				return nil, err
			}
			children, err := tc.Get(ctx, childrenRef)
			if err != nil {
				return nil, err
			}
			isLeaf, keys, err := DecodeKeys(kb)
			if err != nil {
				return nil, err
			}
			ids := decodeRefIDs(children)
			if isLeaf {
				i := sort.SearchStrings(keys, key)
				if i >= len(keys) || keys[i] != key {
					return nil, fmt.Errorf("bptree: key %q not found", key)
				}
				return tc.Get(ctx, raysim.Ref{ID: ids[i]})
			}
			i, ok := childIndex(keys, key)
			if !ok {
				return nil, fmt.Errorf("bptree: key %q below minimum", key)
			}
			keysRef, childrenRef = raysim.Ref{ID: ids[2*i]}, raysim.Ref{ID: ids[2*i+1]}
		}
	})

	// Continuation-passing style: two fine-grained invocations per level
	// (one per ObjectRef needed, as in Table 2); no task ever blocks on
	// a get of an unavailable object — each need becomes a new task.
	c.Register("bptree/cps_keys", func(tc *raysim.TaskCtx, args []raysim.Arg) ([]byte, error) {
		// args: key, keysRef (pulled), childrenRef (id by value)
		ctx := context.Background()
		key := string(args[0].Data)
		kb, err := tc.Get(ctx, args[1].Ref) // local: pulled before run
		if err != nil {
			return nil, err
		}
		next, err := tc.Submit(ctx, "bptree/cps_children",
			raysim.ByValue(args[0].Data), raysim.ByValue(kb), args[2])
		if err != nil {
			return nil, err
		}
		_ = key
		tc.Forward(next)
		return nil, nil
	})
	c.Register("bptree/cps_children", func(tc *raysim.TaskCtx, args []raysim.Arg) ([]byte, error) {
		// args: key, keysBlob (by value), childrenRef (pulled)
		ctx := context.Background()
		key := string(args[0].Data)
		isLeaf, keys, err := DecodeKeys(args[1].Data)
		if err != nil {
			return nil, err
		}
		children, err := tc.Get(ctx, args[2].Ref)
		if err != nil {
			return nil, err
		}
		ids := decodeRefIDs(children)
		if isLeaf {
			i := sort.SearchStrings(keys, key)
			if i >= len(keys) || keys[i] != key {
				return nil, fmt.Errorf("bptree: key %q not found", key)
			}
			next, err := tc.Submit(ctx, "bptree/cps_value", raysim.ByRef(raysim.Ref{ID: ids[i]}))
			if err != nil {
				return nil, err
			}
			tc.Forward(next)
			return nil, nil
		}
		i, ok := childIndex(keys, key)
		if !ok {
			return nil, fmt.Errorf("bptree: key %q below minimum", key)
		}
		next, err := tc.Submit(ctx, "bptree/cps_keys",
			raysim.ByValue(args[0].Data),
			raysim.ByRef(raysim.Ref{ID: ids[2*i]}),
			raysim.ByRef(raysim.Ref{ID: ids[2*i+1]}))
		if err != nil {
			return nil, err
		}
		tc.Forward(next)
		return nil, nil
	})
	c.Register("bptree/cps_value", func(tc *raysim.TaskCtx, args []raysim.Arg) ([]byte, error) {
		return tc.Get(context.Background(), args[0].Ref)
	})
}

// GetRayBlocking runs a blocking-style lookup from the driver.
func GetRayBlocking(ctx context.Context, c *raysim.Cluster, root RayRoot, key string) ([]byte, error) {
	ref, err := c.Submit(ctx, "bptree/get_blocking",
		raysim.ByValue([]byte(key)), raysim.ByRef(root.Keys), raysim.ByRef(root.Children))
	if err != nil {
		return nil, err
	}
	return c.Get(ctx, ref)
}

// GetRayCPS runs a continuation-passing-style lookup from the driver.
func GetRayCPS(ctx context.Context, c *raysim.Cluster, root RayRoot, key string) ([]byte, error) {
	ref, err := c.Submit(ctx, "bptree/cps_keys",
		raysim.ByValue([]byte(key)), raysim.ByRef(root.Keys), raysim.ByRef(root.Children))
	if err != nil {
		return nil, err
	}
	return c.Get(ctx, ref)
}
