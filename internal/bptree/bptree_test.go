package bptree

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"fixgo/internal/baselines/raysim"
	"fixgo/internal/core"
	"fixgo/internal/runtime"
	"fixgo/internal/store"
)

func testData(n int) ([]string, [][]byte) {
	keys := GenTitles(n)
	values := make([][]byte, n)
	for i, k := range keys {
		values[i] = []byte("value-of-" + k)
	}
	return keys, values
}

func TestKeysBlobRoundTrip(t *testing.T) {
	f := func(leaf bool, raw [][]byte) bool {
		keys := make([]string, len(raw))
		for i, r := range raw {
			if len(r) > 1000 {
				r = r[:1000]
			}
			keys[i] = string(r)
		}
		gotLeaf, gotKeys, err := DecodeKeys(EncodeKeys(leaf, keys))
		if err != nil || gotLeaf != leaf || len(gotKeys) != len(keys) {
			return false
		}
		for i := range keys {
			if gotKeys[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeKeysErrors(t *testing.T) {
	for _, bad := range [][]byte{nil, {1}, {1, 5, 0, 0, 0}, EncodeKeys(true, []string{"abc"})[:6]} {
		if _, _, err := DecodeKeys(bad); err == nil {
			t.Errorf("DecodeKeys(%v) should fail", bad)
		}
	}
}

func TestBuildAndDirectGet(t *testing.T) {
	for _, arity := range []int{2, 4, 16, 64} {
		st := store.New()
		keys, values := testData(200)
		root, err := Build(st, arity, keys, values)
		if err != nil {
			t.Fatalf("arity %d: %v", arity, err)
		}
		for i := 0; i < len(keys); i += 17 {
			got, err := GetDirect(st, root, keys[i])
			if err != nil {
				t.Fatalf("arity %d key %d: %v", arity, i, err)
			}
			if !bytes.Equal(got, values[i]) {
				t.Fatalf("arity %d key %d: value mismatch", arity, i)
			}
		}
		if _, err := GetDirect(st, root, "zzzz-no-such-key"); err == nil {
			t.Fatal("expected not-found")
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	st := store.New()
	if _, err := Build(st, 1, []string{"a"}, [][]byte{{1}}); err == nil {
		t.Fatal("arity 1 should fail")
	}
	if _, err := Build(st, 4, []string{"b", "a"}, [][]byte{{1}, {2}}); err == nil {
		t.Fatal("unsorted keys should fail")
	}
	if _, err := Build(st, 4, nil, nil); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestDepth(t *testing.T) {
	st := store.New()
	keys, values := testData(64)
	root, err := Build(st, 4, keys, values)
	if err != nil {
		t.Fatal(err)
	}
	if root.Depth != 3 { // 64 keys / 4 = 16 leaves / 4 = 4 / 4 = 1: 3 levels
		t.Fatalf("depth = %d, want 3", root.Depth)
	}
}

func TestFixTraversal(t *testing.T) {
	reg := runtime.NewRegistry()
	Register(reg)
	st := store.New()
	e := runtime.New(st, runtime.Options{Cores: 2, Registry: reg})
	keys, values := testData(300)
	root, err := Build(st, 8, keys, values)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(keys); i += 37 {
		job, err := GetJob(st, root, keys[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.EvalBlob(context.Background(), job)
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if !bytes.Equal(got, values[i]) {
			t.Fatalf("key %d: got %q want %q", i, got, values[i])
		}
	}
}

func TestFixTraversalMissingKey(t *testing.T) {
	reg := runtime.NewRegistry()
	Register(reg)
	st := store.New()
	e := runtime.New(st, runtime.Options{Cores: 2, Registry: reg})
	keys, values := testData(50)
	root, _ := Build(st, 4, keys, values)
	job, _ := GetJob(st, root, "title-999999999999-zzzz")
	if _, err := e.EvalBlob(context.Background(), job); err == nil {
		t.Fatal("expected not-found error")
	}
}

func TestFixTraversalMinimalFootprint(t *testing.T) {
	// The traversal must fetch only the nodes on the root-to-leaf path:
	// with a remote fetcher, the number of fetched trees is ≤ depth and
	// far below the total node count.
	reg := runtime.NewRegistry()
	Register(reg)

	// Build in a "remote" store, then serve it to an empty engine.
	remote := store.New()
	keys, values := testData(4096)
	root, err := Build(remote, 16, keys, values)
	if err != nil {
		t.Fatal(err)
	}
	var fetches int
	st := store.New()
	e := runtime.New(st, runtime.Options{Cores: 2, Registry: reg,
		Fetcher: runtime.FetcherFunc(func(ctx context.Context, h core.Handle) ([]byte, error) {
			fetches++
			return remote.ObjectBytes(h)
		})})
	job, err := GetJob(st, root, keys[1234])
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvalBlob(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, values[1234]) {
		t.Fatal("value mismatch")
	}
	// depth = ceil(log16(4096/16 leaves=256))… = 3 levels; per level ~2
	// objects (keys blob + node tree) plus the value: allow slack but
	// require far fewer fetches than the ~560 objects in the tree.
	if fetches > 4*root.Depth+4 {
		t.Fatalf("fetched %d objects for one lookup at depth %d", fetches, root.Depth)
	}
}

func newRayCluster(t *testing.T) *raysim.Cluster {
	t.Helper()
	c := raysim.NewCluster(raysim.Options{Nodes: 1, CoresPerNode: 1,
		TaskOverhead: 10 * time.Microsecond, GetOverhead: time.Microsecond})
	t.Cleanup(c.Close)
	RegisterRay(c)
	return c
}

func TestRayBlockingTraversal(t *testing.T) {
	c := newRayCluster(t)
	keys, values := testData(300)
	root, err := BuildRay(c, 0, 8, keys, values)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < len(keys); i += 41 {
		got, err := GetRayBlocking(ctx, c, root, keys[i])
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if !bytes.Equal(got, values[i]) {
			t.Fatalf("key %d mismatch", i)
		}
	}
}

func TestRayCPSTraversal(t *testing.T) {
	c := newRayCluster(t)
	keys, values := testData(300)
	root, err := BuildRay(c, 0, 8, keys, values)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < len(keys); i += 41 {
		got, err := GetRayCPS(ctx, c, root, keys[i])
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if !bytes.Equal(got, values[i]) {
			t.Fatalf("key %d mismatch", i)
		}
	}
}

func TestRayCPSUsesMoreInvocations(t *testing.T) {
	c := newRayCluster(t)
	keys, values := testData(256)
	root, err := BuildRay(c, 0, 4, keys, values)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := GetRayBlocking(ctx, c, root, keys[100]); err != nil {
		t.Fatal(err)
	}
	tasks, _ := c.Stats()
	blocking := tasks[0]
	if _, err := GetRayCPS(ctx, c, root, keys[100]); err != nil {
		t.Fatal(err)
	}
	tasks, _ = c.Stats()
	cps := tasks[0] - blocking
	if blocking != 1 {
		t.Fatalf("blocking used %d invocations, want 1", blocking)
	}
	if cps < 2*int64(root.Depth) {
		t.Fatalf("cps used %d invocations, want ≥ 2×depth (%d)", cps, 2*root.Depth)
	}
}

func TestGenTitles(t *testing.T) {
	titles := GenTitles(1000)
	if len(titles) != 1000 {
		t.Fatal("count")
	}
	seen := map[string]bool{}
	var total int
	for _, s := range titles {
		if seen[s] {
			t.Fatalf("duplicate title %q", s)
		}
		seen[s] = true
		total += len(s)
	}
	avg := total / len(titles)
	if avg < 18 || avg > 26 {
		t.Fatalf("average title length = %d, want ≈ 22", avg)
	}
	fmt.Println() // keep fmt imported
}
