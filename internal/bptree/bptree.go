// Package bptree implements the B+-tree key-value store of the paper's
// section 5.4 (Fig. 9, Table 2): the tree is represented on "disk" as Fix
// Trees, and lookups traverse it node-by-node. Each traversal step's
// minimum repository contains only the current node's key array — the
// node trees themselves are reached through Selection Thunks (strict for
// the keys needed now, shallow for the subtree needed later), so the data
// accessed per step is O(arity × key size) no matter how large the tree.
package bptree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"fixgo/internal/core"
	"fixgo/internal/runtime"
)

// Keys blob encoding: [isLeaf u8][count u32] then per key [len u16][bytes].

// EncodeKeys packs a node's key array.
func EncodeKeys(isLeaf bool, keys []string) []byte {
	buf := make([]byte, 0, 5+len(keys)*8)
	if isLeaf {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
	}
	return buf
}

// DecodeKeys unpacks a node's key array.
func DecodeKeys(data []byte) (isLeaf bool, keys []string, err error) {
	if len(data) < 5 {
		return false, nil, fmt.Errorf("bptree: keys blob too short")
	}
	isLeaf = data[0] == 1
	n := binary.LittleEndian.Uint32(data[1:5])
	data = data[5:]
	keys = make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(data) < 2 {
			return false, nil, fmt.Errorf("bptree: truncated keys blob")
		}
		l := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if len(data) < l {
			return false, nil, fmt.Errorf("bptree: truncated key")
		}
		keys = append(keys, string(data[:l]))
		data = data[l:]
	}
	return isLeaf, keys, nil
}

// childIndex picks the child to descend into: the last child whose
// minimum key is ≤ key.
func childIndex(keys []string, key string) (int, bool) {
	i := sort.SearchStrings(keys, key)
	if i < len(keys) && keys[i] == key {
		return i, true
	}
	return i - 1, i > 0
}

// Root describes a built tree.
type Root struct {
	// Node is the root node's Tree handle.
	Node core.Handle
	// Keys is the root node's keys Blob handle.
	Keys core.Handle
	// Depth is the number of levels (1 = a single leaf).
	Depth int
	// Arity is the build fan-out.
	Arity int
}

// Build constructs a B+-tree of the given arity over sorted keys and
// values. Node layout: Tree[keysBlob, child0, child1, ...]; leaves hold
// value Blobs as children, internal nodes hold child node Trees, and an
// internal node's keys are its children's minimum keys.
func Build(st core.Store, arity int, keys []string, values [][]byte) (Root, error) {
	if arity < 2 {
		return Root{}, fmt.Errorf("bptree: arity must be ≥ 2, got %d", arity)
	}
	if len(keys) != len(values) || len(keys) == 0 {
		return Root{}, fmt.Errorf("bptree: need equal, nonzero keys and values (%d, %d)", len(keys), len(values))
	}
	if !sort.StringsAreSorted(keys) {
		return Root{}, fmt.Errorf("bptree: keys must be sorted")
	}

	type node struct {
		tree core.Handle
		keys core.Handle
		min  string
	}

	// Leaves.
	var level []node
	for i := 0; i < len(keys); i += arity {
		end := min(i+arity, len(keys))
		kb := st.PutBlob(EncodeKeys(true, keys[i:end]))
		entries := []core.Handle{kb}
		for _, v := range values[i:end] {
			entries = append(entries, st.PutBlob(v))
		}
		tree, err := st.PutTree(entries)
		if err != nil {
			return Root{}, err
		}
		level = append(level, node{tree: tree, keys: kb, min: keys[i]})
	}
	depth := 1
	for len(level) > 1 {
		var next []node
		for i := 0; i < len(level); i += arity {
			end := min(i+arity, len(level))
			group := level[i:end]
			mins := make([]string, len(group))
			entries := []core.Handle{{}}
			for j, child := range group {
				mins[j] = child.min
				entries = append(entries, child.tree)
			}
			kb := st.PutBlob(EncodeKeys(false, mins))
			entries[0] = kb
			tree, err := st.PutTree(entries)
			if err != nil {
				return Root{}, err
			}
			next = append(next, node{tree: tree, keys: kb, min: group[0].min})
		}
		level = next
		depth++
	}
	return Root{Node: level[0].tree, Keys: level[0].keys, Depth: depth, Arity: arity}, nil
}

// GetDirect looks a key up by walking the stored tree host-side (used to
// verify the Fix and Ray traversals).
func GetDirect(st core.Store, root Root, key string) ([]byte, error) {
	node := root.Node
	for {
		entries, err := st.Tree(node)
		if err != nil {
			return nil, err
		}
		kb, err := st.Blob(entries[0])
		if err != nil {
			return nil, err
		}
		isLeaf, keys, err := DecodeKeys(kb)
		if err != nil {
			return nil, err
		}
		if isLeaf {
			i := sort.SearchStrings(keys, key)
			if i >= len(keys) || keys[i] != key {
				return nil, fmt.Errorf("bptree: key %q not found", key)
			}
			return st.Blob(entries[1+i])
		}
		i, ok := childIndex(keys, key)
		if !ok {
			return nil, fmt.Errorf("bptree: key %q below minimum", key)
		}
		node = entries[1+i]
	}
}

// GetProcName is the registry name of the Fix traversal step.
const GetProcName = "bptree/get"

// Register installs the traversal procedure.
//
// bptree/get: [limits, fn, key, keysBlob, nodeRef] — keysBlob is the
// current node's key array (accessible); nodeRef is the current node's
// Tree as an inaccessible Ref. A step either returns
// strict(selection(nodeRef, 1+i)) for the value at a leaf, or a new
// Application whose input strictly selects the child's keys and shallowly
// selects the child itself — Algorithm 3's shape, applied to a B+-tree.
func Register(reg *runtime.Registry) {
	reg.RegisterFunc(GetProcName, func(api core.API, input core.Handle) (core.Handle, error) {
		entries, err := api.AttachTree(input)
		if err != nil {
			return core.Handle{}, err
		}
		if len(entries) != 5 {
			return core.Handle{}, fmt.Errorf("bptree/get: want 5 entries, got %d", len(entries))
		}
		keyRaw, err := api.AttachBlob(entries[2])
		if err != nil {
			return core.Handle{}, err
		}
		kb, err := api.AttachBlob(entries[3])
		if err != nil {
			return core.Handle{}, err
		}
		nodeRef := entries[4]
		isLeaf, keys, err := DecodeKeys(kb)
		if err != nil {
			return core.Handle{}, err
		}
		key := string(keyRaw)
		if isLeaf {
			i := sort.SearchStrings(keys, key)
			if i >= len(keys) || keys[i] != key {
				return core.Handle{}, fmt.Errorf("bptree/get: key %q not found", key)
			}
			sel, err := api.Selection(nodeRef, uint64(1+i))
			if err != nil {
				return core.Handle{}, err
			}
			return api.Strict(sel)
		}
		i, ok := childIndex(keys, key)
		if !ok {
			return core.Handle{}, fmt.Errorf("bptree/get: key %q below minimum", key)
		}
		childSel, err := api.Selection(nodeRef, uint64(1+i))
		if err != nil {
			return core.Handle{}, err
		}
		childKeysSel, err := api.Selection(childSel, 0)
		if err != nil {
			return core.Handle{}, err
		}
		e1, err := api.Strict(childKeysSel)
		if err != nil {
			return core.Handle{}, err
		}
		e2, err := api.Shallow(childSel)
		if err != nil {
			return core.Handle{}, err
		}
		next, err := api.CreateTree([]core.Handle{entries[0], entries[1], entries[2], e1, e2})
		if err != nil {
			return core.Handle{}, err
		}
		return api.Application(next)
	})
}

// GetJob builds the top-level Strict Encode that looks key up in root.
func GetJob(st core.Store, root Root, key string) (core.Handle, error) {
	lim := core.DefaultLimits.Handle()
	fn := st.PutBlob(core.NativeFunctionBlob(GetProcName))
	keyH := st.PutBlob([]byte(key))
	tree, err := st.PutTree([]core.Handle{lim, fn, keyH, root.Keys, root.Node.AsRef()})
	if err != nil {
		return core.Handle{}, err
	}
	th, err := core.Application(tree)
	if err != nil {
		return core.Handle{}, err
	}
	return core.Strict(th)
}

// GenTitles generates n deterministic pseudo-titles (sorted, unique) with
// the ~22-byte average length of the paper's Wikipedia article titles.
func GenTitles(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("title-%012d-%s", i, suffix(i))
	}
	sort.Strings(out)
	return out
}

func suffix(i int) string {
	var b bytes.Buffer
	v := uint32(i)*2654435761 + 12345
	for j := 0; j < 4; j++ {
		b.WriteByte(byte('a' + (v % 26)))
		v /= 26
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
