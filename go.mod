module fixgo

go 1.24
