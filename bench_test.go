package fixgo_test

import (
	"os"
	"testing"

	"fixgo/internal/bench"
)

// TestMain lets the Fig. 7a "Linux process" row re-exec this binary as
// the add child.
func TestMain(m *testing.M) {
	bench.RunChildIfRequested()
	os.Exit(m.Run())
}

// Each benchmark regenerates one of the paper's tables/figures at the
// default (laptop) scale; set FIXGO_SCALE=paper for parameters closer to
// the paper's. The rendered table (measured vs paper, with slowdown
// ratios) is logged once per benchmark — run with -v to see it.

func runExperiment(b *testing.B, fn func(bench.Scale) (bench.Result, error)) {
	b.Helper()
	s := bench.ScaleFromEnv()
	for i := 0; i < b.N; i++ {
		res, err := fn(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			if base := res.Baseline(); base > 0 {
				b.ReportMetric(base.Seconds(), "fix-s")
			}
		}
	}
}

// BenchmarkFig7a — Fig. 7a / §5.2.1 table: trivial invocation overhead on
// Fixpoint, static/virtual calls, a Linux process, Pheromone, Ray, Faasm,
// and OpenWhisk.
func BenchmarkFig7a(b *testing.B) { runExperiment(b, bench.Fig7a) }

// BenchmarkFig7b — Fig. 7b: a chain of invocations with nearby and remote
// clients (Fixpoint vs Pheromone vs Ray).
func BenchmarkFig7b(b *testing.B) { runExperiment(b, bench.Fig7b) }

// BenchmarkFig8a — Fig. 8a / §5.3.1 table: one-off invocations against
// slow network storage; externalized vs internal I/O.
func BenchmarkFig8a(b *testing.B) { runExperiment(b, bench.Fig8a) }

// BenchmarkFig8b — Fig. 8b: count-string map-reduce across a 10-node
// cluster; Fixpoint (+ no-locality, + internal-I/O ablations), Ray CPS,
// Ray blocking, Pheromone (map only), OpenWhisk.
func BenchmarkFig8b(b *testing.B) { runExperiment(b, bench.Fig8b) }

// BenchmarkFig9 — Fig. 9 / Table 2: B+-tree lookups vs arity; Fixpoint vs
// Ray blocking vs Ray continuation-passing.
func BenchmarkFig9(b *testing.B) { runExperiment(b, bench.Fig9) }

// BenchmarkFig10 — Fig. 10: burst-parallel compile-and-link job; Fixpoint
// vs Ray+MinIO vs OpenWhisk.
func BenchmarkFig10(b *testing.B) { runExperiment(b, bench.Fig10) }

// BenchmarkRepl — this reproduction's replicated-placement experiment:
// fetch availability and repair convergence through a worker kill, swept
// over replication factors.
func BenchmarkRepl(b *testing.B) { runExperiment(b, bench.FigRepl) }
