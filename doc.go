// Package fixgo is a from-scratch Go reproduction of "Fix: externalizing
// network I/O in serverless computing" (EuroSys '26): the Fix ABI, the
// Fixpoint runtime, the substrates its evaluation depends on, and a
// benchmark harness that regenerates every table and figure of the paper.
//
// The library lives under internal/:
//
//   - internal/core      — the Fix ABI (Handles, Blobs, Trees, Thunks, Encodes)
//   - internal/store     — content-addressed runtime storage with memoization
//   - internal/durable   — crash-recoverable disk persistence: append-only
//     packs + memo journal with CRC framing, replay, fsync policy, GC
//   - internal/codelet   — FixVM, the sandboxed deterministic codelet VM
//   - internal/runtime   — the Fixpoint engine (late-binding evaluator)
//   - internal/cluster   — the distributed engine and dataflow-aware scheduler:
//     heartbeat failure detection, peer eviction, job re-placement, and
//     consistent-hash R-way object replication with anti-entropy repair
//   - internal/gateway   — the HTTP serving frontend (cmd/fixgate): result
//     cache with single-flight collapsing, admission control, client SDK
//   - internal/jobs      — the asynchronous job lifecycle: durable journaled
//     queue, per-tenant fair worker pool, retries, dead-letter, cancellation
//   - internal/transport, internal/proto — links (simulated, TCP, chaos
//     fault injection) and the node wire protocol
//   - internal/objstore  — placement primitives (consistent-hash ring,
//     replica tracker) and the simulated S3/MinIO-style store
//   - internal/baselines — OpenWhisk/Ray/Pheromone/Faasm re-implementations
//   - internal/flatware, internal/bptree, internal/wiki, internal/buildsys —
//     the evaluation workloads
//   - internal/bench     — one experiment per table/figure
//
// See README.md for a tour and the HTTP API reference, ARCHITECTURE.md
// for the package map, request-lifecycle walkthrough, and substitution
// inventory, OPERATIONS.md for the deployment runbook, and
// BENCHMARKS.md for each experiment and its emitted BENCH_*.json. The
// benchmarks in bench_test.go regenerate each figure:
//
//	go test -bench=. -benchmem
package fixgo
