// Bptree: the paper's key-value store (§5.4). A B+-tree of synthetic
// article titles is stored as Fix Trees; lookups descend node-by-node,
// each step strictly selecting only the next node's key array and
// shallowly selecting the node itself, so a lookup's footprint is
// O(arity × key size) — not the whole tree.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fixgo/internal/bptree"
	"fixgo/internal/core"
	"fixgo/internal/runtime"
	"fixgo/internal/store"
)

func main() {
	const entries = 10000
	keys := bptree.GenTitles(entries)
	values := make([][]byte, entries)
	for i, k := range keys {
		values[i] = []byte("value-" + k)
	}

	reg := runtime.NewRegistry()
	bptree.Register(reg)

	for _, arity := range []int{8, 64, 512} {
		st := store.New()
		engine := runtime.New(st, runtime.Options{Cores: 1, Registry: reg})

		// The "remote" store holds the tree; the engine fetches only
		// what each traversal step pins down.
		data := store.New()
		root, err := bptree.Build(data, arity, keys, values)
		if err != nil {
			log.Fatal(err)
		}
		fetched := 0
		engine = runtime.New(st, runtime.Options{Cores: 1, Registry: reg,
			Fetcher: runtime.FetcherFunc(func(ctx context.Context, h core.Handle) ([]byte, error) {
				fetched++
				return data.ObjectBytes(h)
			})})

		start := time.Now()
		key := keys[entries/3]
		job, err := bptree.GetJob(st, root, key)
		if err != nil {
			log.Fatal(err)
		}
		got, err := engine.EvalBlob(context.Background(), job)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("arity %4d: depth %d, lookup %q → %q in %v, %d objects fetched (of %d in store)\n",
			arity, root.Depth, key[:18]+"…", got[:12], time.Since(start).Round(time.Microsecond), fetched, data.Len())
	}
}
