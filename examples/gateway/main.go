// Gateway walkthrough: serve a Fixpoint engine over HTTP with fixgate's
// serving layer, then demonstrate what content-addressed determinism buys
// the edge — a thundering herd of identical submissions costs one
// evaluation, and repeats are answered from the result cache without
// touching the engine.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"

	"fixgo/internal/codelet"
	"fixgo/internal/core"
	"fixgo/internal/gateway"
	"fixgo/internal/runtime"
	"fixgo/internal/store"
)

func main() {
	// An in-process engine behind a gateway — the same wiring
	// `fixgate -listen :7670` does, minus the flags.
	eng := runtime.New(store.New(), runtime.Options{Cores: 4})
	srv, err := gateway.NewServer(gateway.Options{
		Backend:      gateway.NewEngineBackend(eng),
		CacheEntries: 1024,
		MaxInFlight:  8,
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(l) }()
	defer hs.Close()
	base := "http://" + l.Addr().String()
	fmt.Printf("gateway listening on %s\n\n", base)

	// A client uploads the add codelet and builds add(40, 2) — all over
	// HTTP, by Handle.
	ctx := context.Background()
	c := gateway.NewClient(base, gateway.WithTenant("walkthrough"))
	fn, err := c.PutBlob(ctx, codelet.AddFunctionBlob())
	if err != nil {
		log.Fatal(err)
	}
	tree, err := c.PutTree(ctx, core.InvocationTree(
		core.DefaultLimits.Handle(), fn, core.LiteralU64(40), core.LiteralU64(2)))
	if err != nil {
		log.Fatal(err)
	}
	job, _ := core.Application(tree)
	fmt.Printf("job handle: %s\n\n", gateway.FormatHandle(job))

	// 16 concurrent clients submit the *same* job. The gateway collapses
	// them onto one evaluation; every caller gets the answer.
	const K = 16
	var wg sync.WaitGroup
	outcomes := make([]gateway.CacheOutcome, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.SubmitFetch(ctx, job)
			if err != nil {
				log.Fatal(err)
			}
			outcomes[i] = res.Outcome
			if i == 0 {
				v, _ := core.DecodeU64(res.Data)
				fmt.Printf("add(40, 2) = %d\n", v)
			}
		}(i)
	}
	wg.Wait()
	counts := map[gateway.CacheOutcome]int{}
	for _, o := range outcomes {
		counts[o]++
	}
	fmt.Printf("herd of %d identical submissions: %d led, %d collapsed, %d cache hits\n",
		K, counts[gateway.OutcomeMiss], counts[gateway.OutcomeCollapsed], counts[gateway.OutcomeHit])

	// A later resubmission is a pure cache hit.
	res, err := c.Submit(ctx, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmission outcome: %s (served in %v)\n\n", res.Outcome, res.Elapsed)

	// The scrape endpoint exports everything the edge saw.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("GET /metrics:\n%s", metrics)
}
