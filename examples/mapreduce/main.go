// Mapreduce: the paper's count-string workload (§5.3.2) on a simulated
// four-node Fixpoint cluster. Chunks are scattered across nodes; the whole
// map-reduce dataflow is one Fix object; the dataflow-aware scheduler runs
// each count where its chunk lives.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fixgo/internal/cluster"
	"fixgo/internal/core"
	"fixgo/internal/runtime"
	"fixgo/internal/transport"
	"fixgo/internal/wiki"
)

func main() {
	const (
		nodesN    = 4
		chunksN   = 32
		chunkSize = 32 << 10
		needle    = "qqz"
	)
	reg := runtime.NewRegistry()
	wiki.Register(reg, wiki.Config{})

	nodes := make([]*cluster.Node, nodesN)
	for i := range nodes {
		nodes[i] = cluster.NewNode(fmt.Sprintf("n%d", i), cluster.NodeOptions{Cores: 8, Registry: reg})
		defer nodes[i].Close()
	}

	// Scatter chunks round-robin, then connect (Hello advertises them).
	var want uint64
	handles := make([]core.Handle, chunksN)
	for i := range handles {
		data := wiki.Chunk(int64(i), chunkSize, needle, 900)
		want += wiki.CountNonOverlapping(data, []byte(needle))
		handles[i] = nodes[i%nodesN].Store().PutBlob(data)
	}
	cluster.FullMesh(transport.LinkConfig{Latency: 300 * time.Microsecond, Bandwidth: 8 << 20}, nodes...)

	job, err := wiki.BuildJob(nodes[0].Store(), needle, handles)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	out, err := nodes[0].EvalBlob(context.Background(), job)
	if err != nil {
		log.Fatal(err)
	}
	got, _ := core.DecodeU64(out)
	fmt.Printf("count(%q) = %d (expected %d) in %v\n", needle, got, want, time.Since(start).Round(time.Millisecond))
	for _, n := range nodes {
		fmt.Printf("  %s ran %d tasks\n", n.ID(), n.Stats().Usage(0).Tasks)
	}
}
