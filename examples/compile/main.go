// Compile: the burst-parallel software build of §5.5 (Fig. 10) on a
// simulated Fixpoint cluster — parallel compile invocations feeding one
// link, with every dependency uploaded from a client node, then an
// incremental rebuild showing memoization: editing one source re-runs
// exactly one compile plus the link.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fixgo/internal/buildsys"
	"fixgo/internal/cluster"
	"fixgo/internal/runtime"
	"fixgo/internal/transport"
)

func main() {
	reg := runtime.NewRegistry()
	buildsys.Register(reg, buildsys.Config{CompileTime: 5 * time.Millisecond, LinkTime: 15 * time.Millisecond})

	client := cluster.NewNode("client", cluster.NodeOptions{Cores: 1, ClientOnly: true, Registry: reg})
	defer client.Close()
	link := transport.LinkConfig{Latency: 300 * time.Microsecond, Bandwidth: 32 << 20}
	var workers []*cluster.Node
	for i := 0; i < 4; i++ {
		w := cluster.NewNode(fmt.Sprintf("w%d", i), cluster.NodeOptions{Cores: 8, Registry: reg})
		defer w.Close()
		workers = append(workers, w)
	}
	cluster.FullMesh(link, workers...)
	for _, w := range workers {
		cluster.Connect(client, w, link)
	}

	project := buildsys.GenProject(1, 40, 4<<10, 16<<10)
	job, err := buildsys.BuildJob(client.Store(), project)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	bin, err := client.EvalBlob(context.Background(), job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full build: %d sources → %d-byte binary in %v\n",
		len(project.Sources), len(bin), time.Since(start).Round(time.Millisecond))
	for _, w := range workers {
		fmt.Printf("  %s compiled %d units\n", w.ID(), w.Stats().Usage(0).Tasks)
	}

	// Incremental rebuild: content addressing + memoization mean the
	// unchanged 39 compiles are never re-run anywhere in the cluster.
	project.Sources[7] = append([]byte("// hotfix\n"), project.Sources[7]...)
	job, err = buildsys.BuildJob(client.Store(), project)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := client.EvalBlob(context.Background(), job); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental rebuild after editing one file: %v\n", time.Since(start).Round(time.Millisecond))
}
