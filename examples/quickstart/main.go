// Quickstart: evaluate Fix computations on a single in-process Fixpoint
// engine — a trivial add codelet, the lazy if of Algorithm 1, and the
// recursive fib of Algorithm 2 (Fig. 3).
package main

import (
	"context"
	"fmt"
	"log"

	"fixgo/internal/codelet"
	"fixgo/internal/core"
	"fixgo/internal/runtime"
	"fixgo/internal/store"
)

func main() {
	st := store.New()
	engine := runtime.New(st, runtime.Options{Cores: 4})
	ctx := context.Background()
	lim := core.DefaultLimits.Handle()

	// add(40, 2): an Application Thunk over [limits, fn, a, b], wrapped
	// in a Strict Encode and evaluated.
	add := st.PutBlob(codelet.AddFunctionBlob())
	tree, err := st.PutTree(core.InvocationTree(lim, add, core.LiteralU64(40), core.LiteralU64(2)))
	if err != nil {
		log.Fatal(err)
	}
	thunk, _ := core.Application(tree)
	enc, _ := core.Strict(thunk)
	out, err := engine.EvalBlob(ctx, enc)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := core.DecodeU64(out)
	fmt.Printf("add(40, 2)  = %d\n", v)

	// if(pred, a, b): the unselected branch is a Thunk that never runs
	// and whose dependencies never load.
	iffn := st.PutBlob(codelet.IfFunctionBlob())
	taken, _ := core.Identification(core.LiteralU64(1))
	never, _ := core.Identification(core.LiteralU64(2))
	ifTree, err := st.PutTree(core.InvocationTree(lim, iffn, core.LiteralU64(1), taken, never))
	if err != nil {
		log.Fatal(err)
	}
	ifThunk, _ := core.Application(ifTree)
	ifEnc, _ := core.Strict(ifThunk)
	out, err = engine.EvalBlob(ctx, ifEnc)
	if err != nil {
		log.Fatal(err)
	}
	v, _ = core.DecodeU64(out)
	fmt.Printf("if(true)    = %d\n", v)

	// fib(20): the codelet returns new Thunks; Fixpoint evaluates the
	// recursion with memoization (fib(18) is computed once, not twice).
	fib := st.PutBlob(codelet.FibFunctionBlob())
	fibTree, err := st.PutTree([]core.Handle{lim, fib, add, core.LiteralU64(20)})
	if err != nil {
		log.Fatal(err)
	}
	fibThunk, _ := core.Application(fibTree)
	fibEnc, _ := core.Strict(fibThunk)
	out, err = engine.EvalBlob(ctx, fibEnc)
	if err != nil {
		log.Fatal(err)
	}
	v, _ = core.DecodeU64(out)
	fmt.Printf("fib(20)     = %d\n", v)
	fmt.Printf("invocations = %d (memoized: far fewer than 2^20)\n", engine.Stats().Usage(0).Tasks)
}
