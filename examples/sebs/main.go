// Sebs: the two serverless functions of §5.6 ported via Flatware — a
// Unix-like filesystem represented as nested Fix Trees. dynamic-html
// renders a template from the filesystem; compression archives it; and
// get-file fetches one file with pinpoint Selection dependencies
// (Algorithm 3), never loading sibling directories.
package main

import (
	"context"
	"fmt"
	"log"

	"fixgo/internal/flatware"
	"fixgo/internal/runtime"
	"fixgo/internal/store"
)

func main() {
	st := store.New()
	reg := runtime.NewRegistry()
	flatware.RegisterGetFile(reg)
	flatware.RegisterSeBS(reg)
	engine := runtime.New(st, runtime.Options{Cores: 2, Registry: reg})
	ctx := context.Background()

	// Build the dependency filesystem (Fig. 11 of the paper).
	fs := flatware.NewDir()
	fs.AddFile("templates/template.html",
		[]byte("<html><body><h1>Hello {{.Username}}!</h1><ul>{{range .Numbers}}<li>{{.}}</li>{{end}}</ul></body></html>"))
	fs.AddFile("dynamic-html.py", []byte("# CPython driver stand-in"))
	fs.AddFile("lib/jinja2/__init__.py", []byte("# template engine dependency"))
	fs.AddFile("lib/markupsafe/__init__.py", []byte("# escaping dependency"))
	fs.AddFile("data/report.txt", []byte("quarterly numbers go here"))
	root, err := fs.Build(st)
	if err != nil {
		log.Fatal(err)
	}

	// get-file: one path lookup, one directory level per invocation.
	job, err := flatware.GetFileJob(st, root, "templates/template.html")
	if err != nil {
		log.Fatal(err)
	}
	tpl, err := engine.EvalBlob(ctx, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get-file: %d bytes of template\n", len(tpl))

	// dynamic-html.
	job, err = flatware.DynamicHTMLJob(st, root, "yuhan")
	if err != nil {
		log.Fatal(err)
	}
	html, err := engine.EvalBlob(ctx, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic-html: %s…\n", html[:48])

	// compression.
	job, err = flatware.CompressionJob(st, root)
	if err != nil {
		log.Fatal(err)
	}
	archive, err := engine.EvalBlob(ctx, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compression: %d-byte deflated archive of the filesystem\n", len(archive))
}
